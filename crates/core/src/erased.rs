//! Type-erased transposition: elements are opaque byte chunks.
//!
//! File-format tools and FFI boundaries often know an element's *size*
//! but not its type. This module runs the decomposition directly on a
//! byte buffer whose logical elements are `elem_size`-byte chunks, using
//! the swap-only formulation of [`crate::noncopy`] — no `T`, no
//! transmutes, no alignment requirements, `O(max(m, n))` bytes of cycle
//! marks as auxiliary space.
//!
//! ```
//! use ipt_core::erased::transpose_erased;
//! use ipt_core::Layout;
//!
//! // Three RGB pixels (3-byte elements) as a 1 x 3 image... transpose a
//! // 2 x 2 block of u24s:
//! let mut px = vec![
//!     1, 1, 1,  2, 2, 2,
//!     3, 3, 3,  4, 4, 4,
//! ];
//! transpose_erased(&mut px, 2, 2, 3, Layout::RowMajor);
//! assert_eq!(px, [1, 1, 1, 3, 3, 3, 2, 2, 2, 4, 4, 4]);
//! ```

use crate::index::C2rParams;
use crate::layout::Layout;

/// Swap two `elem`-byte chunks at element indices `a` and `b`.
#[inline]
fn swap_elems(data: &mut [u8], a: usize, b: usize, elem: usize) {
    if a == b {
        return;
    }
    let (a0, b0) = (a * elem, b * elem);
    for k in 0..elem {
        data.swap(a0 + k, b0 + k);
    }
}

/// Reverse elements `[lo, hi)` of the strided element sequence
/// `start + k*stride` (indices in elements).
fn reverse_strided(
    data: &mut [u8],
    start: usize,
    stride: usize,
    lo: usize,
    hi: usize,
    elem: usize,
) {
    let (mut a, mut b) = (lo, hi);
    while a + 1 < b {
        b -= 1;
        swap_elems(data, start + a * stride, start + b * stride, elem);
        a += 1;
    }
}

/// Rotate the strided element sequence left by `r` (three-reversal).
fn rotate_strided_left(
    data: &mut [u8],
    start: usize,
    stride: usize,
    len: usize,
    r: usize,
    elem: usize,
) {
    if len == 0 {
        return;
    }
    let r = r % len;
    if r == 0 {
        return;
    }
    reverse_strided(data, start, stride, 0, r, elem);
    reverse_strided(data, start, stride, r, len, elem);
    reverse_strided(data, start, stride, 0, len, elem);
}

/// Apply the gather permutation `new[k] = old[perm(k)]` over the strided
/// element sequence by swaps along cycles (see `noncopy` for the cycle
/// argument; `visited` covers `[0, len)` and is left all-false).
fn apply_gather_swaps(
    data: &mut [u8],
    start: usize,
    stride: usize,
    len: usize,
    perm: impl Fn(usize) -> usize,
    visited: &mut [bool],
    elem: usize,
) {
    debug_assert!(visited.len() >= len);
    for leader in 0..len {
        if visited[leader] {
            visited[leader] = false;
            continue;
        }
        let mut i = leader;
        loop {
            let src = perm(i);
            debug_assert!(src < len);
            if src == leader {
                break;
            }
            swap_elems(data, start + i * stride, start + src * stride, elem);
            visited[src] = true;
            i = src;
        }
    }
}

/// Type-erased C2R: same contract as [`crate::c2r()`] on a buffer of
/// `m * n` elements of `elem_size` bytes each.
///
/// # Panics
///
/// Panics if `elem_size == 0` or `data.len() != m * n * elem_size`.
pub fn c2r_erased(data: &mut [u8], m: usize, n: usize, elem_size: usize) {
    assert!(elem_size > 0, "element size must be positive");
    assert_eq!(
        data.len(),
        m * n * elem_size,
        "buffer length must be m * n * elem_size"
    );
    if m <= 1 || n <= 1 {
        return;
    }
    let p = C2rParams::new(m, n);
    let mut visited = vec![false; m.max(n)];
    if !p.coprime() {
        for j in 0..n {
            rotate_strided_left(data, j, n, m, p.rotate_amount(j) % m, elem_size);
        }
    }
    for i in 0..m {
        apply_gather_swaps(
            data,
            i * n,
            1,
            n,
            |j| p.d_inv(i, j),
            &mut visited,
            elem_size,
        );
    }
    for j in 0..n {
        apply_gather_swaps(data, j, n, m, |i| p.s(j, i), &mut visited, elem_size);
    }
}

/// Type-erased R2C: the inverse of [`c2r_erased`]`(data, m, n, elem_size)`.
pub fn r2c_erased(data: &mut [u8], m: usize, n: usize, elem_size: usize) {
    assert!(elem_size > 0, "element size must be positive");
    assert_eq!(
        data.len(),
        m * n * elem_size,
        "buffer length must be m * n * elem_size"
    );
    if m <= 1 || n <= 1 {
        return;
    }
    let p = C2rParams::new(m, n);
    let mut visited = vec![false; m.max(n)];
    // Inverse column shuffle: gather with (s'_j)^-1 = q^-1 ∘ p^-1_j.
    for j in 0..n {
        apply_gather_swaps(
            data,
            j,
            n,
            m,
            |i| p.q_inv(p.p_inv(j, i)),
            &mut visited,
            elem_size,
        );
    }
    // Inverse row shuffle: gather with d'_i directly (§4.3).
    for i in 0..m {
        apply_gather_swaps(data, i * n, 1, n, |j| p.d(i, j), &mut visited, elem_size);
    }
    if !p.coprime() {
        for j in 0..n {
            let k = p.rotate_amount(j) % m;
            rotate_strided_left(data, j, n, m, (m - k) % m, elem_size);
        }
    }
}

/// Type-erased in-place transpose with the §5.2 heuristic: `rows x cols`
/// elements of `elem_size` bytes, in `layout`.
pub fn transpose_erased(
    data: &mut [u8],
    rows: usize,
    cols: usize,
    elem_size: usize,
    layout: Layout,
) {
    assert!(elem_size > 0, "element size must be positive");
    assert_eq!(
        data.len(),
        rows * cols * elem_size,
        "buffer length {} does not match {rows} x {cols} x {elem_size}",
        data.len()
    );
    let (m, n) = match layout {
        Layout::RowMajor => (rows, cols),
        Layout::ColMajor => (cols, rows),
    };
    if m > n {
        c2r_erased(data, m, n, elem_size);
    } else {
        r2c_erased(data, n, m, elem_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scratch;

    fn sizes() -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        for m in 1..=8 {
            for n in 1..=8 {
                v.push((m, n));
            }
        }
        v.extend_from_slice(&[
            (3, 8),
            (8, 3),
            (4, 8),
            (12, 20),
            (17, 5),
            // Kernel-dispatch regimes of the typed Copy path this module
            // is checked against: c = 32 -> Block4, c = 64 with b = 2
            // and b = 1 -> Block8 (see `ipt_core::kernels::select_auto`).
            (96, 64),
            (192, 128),
            (128, 64),
            (64, 128),
        ]);
        v
    }

    #[test]
    fn erased_u32_matches_typed_c2r() {
        let mut s = Scratch::new();
        for (m, n) in sizes() {
            let typed: Vec<u32> = (0..(m * n) as u32)
                .map(|x| x.wrapping_mul(2654435761))
                .collect();
            let mut bytes: Vec<u8> = typed.iter().flat_map(|v| v.to_le_bytes()).collect();
            c2r_erased(&mut bytes, m, n, 4);
            let mut want = typed;
            crate::c2r(&mut want, m, n, &mut s);
            let want_bytes: Vec<u8> = want.iter().flat_map(|v| v.to_le_bytes()).collect();
            assert_eq!(bytes, want_bytes, "{m}x{n}");
        }
    }

    #[test]
    fn erased_u32_matches_typed_r2c() {
        // Pins the Forward kernel direction too: on the blocked-regime
        // shapes in `sizes()`, `crate::r2c` dispatches block4/block8.
        let mut s = Scratch::new();
        for (m, n) in sizes() {
            let typed: Vec<u32> = (0..(m * n) as u32)
                .map(|x| x.wrapping_mul(2654435761))
                .collect();
            let mut bytes: Vec<u8> = typed.iter().flat_map(|v| v.to_le_bytes()).collect();
            r2c_erased(&mut bytes, m, n, 4);
            let mut want = typed;
            crate::r2c(&mut want, m, n, &mut s);
            let want_bytes: Vec<u8> = want.iter().flat_map(|v| v.to_le_bytes()).collect();
            assert_eq!(bytes, want_bytes, "{m}x{n}");
        }
    }

    #[test]
    fn erased_r2c_inverts_erased_c2r() {
        for (m, n) in sizes() {
            for elem in [1usize, 2, 3, 5, 8, 24] {
                let orig: Vec<u8> = (0..m * n * elem).map(|x| x as u8).collect();
                let mut a = orig.clone();
                c2r_erased(&mut a, m, n, elem);
                r2c_erased(&mut a, m, n, elem);
                assert_eq!(a, orig, "{m}x{n} elem={elem}");
            }
        }
    }

    #[test]
    fn odd_element_sizes_transpose_correctly() {
        // 3-byte elements (like RGB24): verify against a per-element
        // reference.
        let (m, n, e) = (5usize, 7usize, 3usize);
        let orig: Vec<u8> = (0..m * n * e).map(|x| (x * 7 % 251) as u8).collect();
        let mut a = orig.clone();
        transpose_erased(&mut a, m, n, e, Layout::RowMajor);
        for i in 0..n {
            for j in 0..m {
                let dst = (i * m + j) * e;
                let src = (j * n + i) * e;
                assert_eq!(&a[dst..dst + e], &orig[src..src + e], "({i},{j})");
            }
        }
    }

    #[test]
    fn col_major_heuristic_path() {
        let (m, n, e) = (4usize, 9usize, 2usize);
        let orig: Vec<u8> = (0..m * n * e).map(|x| x as u8).collect();
        let mut a = orig.clone();
        transpose_erased(&mut a, m, n, e, Layout::ColMajor);
        // col-major rows x cols buffer == row-major cols x rows buffer.
        for i in 0..m {
            for j in 0..n {
                let src = (j * m + i) * e; // (i, j) in col-major m x n
                let dst = (i * n + j) * e; // (j, i) in col-major n x m
                assert_eq!(&a[dst..dst + e], &orig[src..src + e]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "element size")]
    fn zero_elem_size_panics() {
        transpose_erased(&mut [], 0, 0, 0, Layout::RowMajor);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_buffer_length_panics() {
        let mut a = vec![0u8; 10];
        transpose_erased(&mut a, 2, 3, 2, Layout::RowMajor);
    }
}
