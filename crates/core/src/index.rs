//! The C2R/R2C index machinery (paper §3–§4, Eqs. 22–36).
//!
//! All of the decomposed transposition's data movement is driven by a small
//! family of index functions parameterized by the matrix shape. This module
//! packages them in [`C2rParams`], which precomputes `c = gcd(m, n)`,
//! `a = m/c`, `b = n/c`, the modular inverses `a^-1 mod b` / `b^-1 mod a`,
//! and strength-reduced reciprocals ([`FastDivMod`]) for every divisor the
//! formulas touch (§4.4).
//!
//! Gather vs scatter: a *gather* with index function `f` writes
//! `dst[i] = src[f(i)]`; a *scatter* writes `dst[f(i)] = src[i]`. They are
//! inverses: gathering with `f` equals scattering with `f^-1`. The paper
//! derives gather forms for every step because gathers vectorize and
//! coalesce better (§4).
//!
//! Naive (`/`, `%`) counterparts of each function live in [`naive`], used to
//! cross-validate the strength-reduced versions and as the ablation
//! baseline for the §4.4 optimization.

use crate::fastdiv::FastDivMod;
use crate::gcd::{cab, mmi};

/// Precomputed parameters for transposing an `m x n` matrix.
///
/// Everything here is derived from `(m, n)` alone, costs `O(log)` to build,
/// and is shared by all rows and columns — build it once per transpose.
///
/// ```
/// use ipt_core::C2rParams;
///
/// let p = C2rParams::new(4, 8); // the paper's Figure 2 example
/// assert_eq!((p.c, p.a, p.b), (4, 1, 2));
/// // Row 0's destination-column permutation d'_0 (Eq. 24):
/// let d0: Vec<usize> = (0..8).map(|j| p.d(0, j)).collect();
/// assert_eq!(d0, [0, 4, 1, 5, 2, 6, 3, 7]);
/// // ... and its inverse (Eq. 31):
/// assert!((0..8).all(|j| p.d_inv(0, p.d(0, j)) == j));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct C2rParams {
    /// Number of rows of the (row-major) view being permuted.
    pub m: usize,
    /// Number of columns.
    pub n: usize,
    /// `gcd(m, n)`.
    pub c: usize,
    /// `m / c`; coprime to `b`.
    pub a: usize,
    /// `n / c`; the period of the unrotated destination function `d_i` (Lemma 1).
    pub b: usize,
    /// `a^-1 mod b` (exists since `gcd(a, b) = 1`); used by Eq. 31.
    pub a_inv: u64,
    /// `b^-1 mod a`; used by Eq. 34.
    pub b_inv: u64,
    fd_m: FastDivMod,
    fd_n: FastDivMod,
    fd_a: FastDivMod,
    fd_b: FastDivMod,
    fd_c: FastDivMod,
}

impl C2rParams {
    /// Build the parameter set for an `m x n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n == 0`, or if `m * n` overflows `u64`
    /// (the index algebra is carried out in `u64`).
    pub fn new(m: usize, n: usize) -> C2rParams {
        assert!(m > 0 && n > 0, "degenerate matrix {m} x {n}");
        (m as u64)
            .checked_mul(n as u64)
            .expect("m * n overflows u64");
        let (c, a, b) = cab(m, n);
        C2rParams {
            m,
            n,
            c,
            a,
            b,
            a_inv: mmi(a as u64, b as u64),
            b_inv: mmi(b as u64, a as u64),
            fd_m: FastDivMod::new(m as u64),
            fd_n: FastDivMod::new(n as u64),
            fd_a: FastDivMod::new(a as u64),
            fd_b: FastDivMod::new(b as u64),
            fd_c: FastDivMod::new(c as u64),
        }
    }

    /// True when `gcd(m, n) == 1`, in which case the pre-rotation is the
    /// identity and Algorithm 1 skips it (`d_i` is naturally bijective).
    #[inline]
    pub fn coprime(&self) -> bool {
        self.c == 1
    }

    /// Pre-rotation amount for column `j`: `floor(j / b)` (Eq. 23).
    ///
    /// Column `j` of the rotated array gathers from row `(i + k) mod m`
    /// of the source, where `k` is this amount.
    #[inline]
    pub fn rotate_amount(&self, j: usize) -> usize {
        self.fd_b.div(j as u64) as usize
    }

    /// Pre-rotation gather index `r_j(i) = (i + floor(j/b)) mod m` (Eq. 23).
    #[inline]
    pub fn r(&self, j: usize, i: usize) -> usize {
        self.fd_m.rem(i as u64 + self.fd_b.div(j as u64)) as usize
    }

    /// Inverse pre-rotation gather index
    /// `r^-1_j(i) = (i - floor(j/b)) mod m` (Eq. 36); the final step of R2C.
    #[inline]
    pub fn r_inv(&self, j: usize, i: usize) -> usize {
        let k = self.fd_m.rem(self.fd_b.div(j as u64));
        self.fd_m.rem(i as u64 + self.m as u64 - k) as usize
    }

    /// Unrotated destination column `d_i(j) = (i + j*m) mod n` (Eq. 22).
    ///
    /// Periodic with period `b` (Lemma 1), hence *not* bijective when
    /// `c > 1` — the reason the pre-rotation exists. Bijective iff `c == 1`.
    #[inline]
    pub fn d_unrotated(&self, i: usize, j: usize) -> usize {
        self.fd_n.rem(i as u64 + (j as u64) * (self.m as u64)) as usize
    }

    /// Row-shuffle *scatter* index
    /// `d'_i(j) = ((i + floor(j/b)) mod m + j*m) mod n` (Eq. 24).
    ///
    /// Proven a bijection on `[0, n)` for every fixed row `i` (Theorem 3):
    /// after pre-rotation, each element of row `i` moves to a unique column.
    #[inline]
    pub fn d(&self, i: usize, j: usize) -> usize {
        let rotated = self.fd_m.rem(i as u64 + self.fd_b.div(j as u64));
        self.fd_n.rem(rotated + (j as u64) * (self.m as u64)) as usize
    }

    /// Row-shuffle *gather* index `d'^-1_i(j)` (Eq. 31), the inverse
    /// permutation of [`C2rParams::d`] in `j` for fixed `i`.
    ///
    /// Uses the helper
    /// `f(i, j) = j + i*(n-1) + (m if i - (j mod c) + c > m else 0)` and the
    /// modular inverse `a^-1 mod b`:
    /// `d'^-1_i(j) = (a^-1 * floor(f/c)) mod b + (f mod c) * b`.
    #[inline]
    pub fn d_inv(&self, i: usize, j: usize) -> usize {
        let (m, n, c, b) = (self.m as u64, self.n as u64, self.c as u64, self.b as u64);
        let (i, j) = (i as u64, j as u64);
        // The paper's guard `i - (j mod c) + c <= m`, rearranged to avoid
        // unsigned underflow: `i + c <= m + (j mod c)`.
        let jc = self.fd_c.rem(j);
        let mut f = j + i * (n - 1);
        if i + c > m + jc {
            f += m;
        }
        let (fq, fr) = self.fd_c.divrem(f);
        // a_inv < b and (fq mod b) < b, so the product needs up to 2*log2(b)
        // bits; fall back to u128 only in the (pathological) b >= 2^32 case.
        let prod = match self.a_inv.checked_mul(self.fd_b.rem(fq)) {
            Some(p) => self.fd_b.rem(p),
            None => ((self.a_inv as u128 * self.fd_b.rem(fq) as u128) % b as u128) as u64,
        };
        (prod + fr * b) as usize
    }

    /// Column-shuffle gather index
    /// `s'_j(i) = (j + i*n - floor(i/a)) mod m` (Eq. 26).
    ///
    /// Completes the transposition after the row shuffle (Theorem 5); the
    /// `-floor(i/a)` term compensates for the pre-rotation.
    #[inline]
    pub fn s(&self, j: usize, i: usize) -> usize {
        let t = j as u64 + (i as u64) * (self.n as u64) - self.fd_a.div(i as u64);
        self.fd_m.rem(t) as usize
    }

    /// Column-rotation gather index `p_j(i) = (i + j) mod m` (Eq. 32):
    /// the first factor of the decomposed column shuffle, `s'_j = p_j ∘ q`.
    #[inline]
    pub fn p(&self, j: usize, i: usize) -> usize {
        self.fd_m.rem(i as u64 + j as u64) as usize
    }

    /// Inverse column-rotation gather index `p^-1_j(i) = (i - j) mod m`
    /// (Eq. 35); used by R2C.
    #[inline]
    pub fn p_inv(&self, j: usize, i: usize) -> usize {
        let jm = self.fd_m.rem(j as u64);
        self.fd_m.rem(i as u64 + self.m as u64 - jm) as usize
    }

    /// Row-permutation gather index
    /// `q(i) = (i*n - floor(i/a)) mod m` (Eq. 33): the second factor of the
    /// decomposed column shuffle. Identical for every column, so it can be
    /// applied as a whole-row permutation (and, on SIMD hardware, by static
    /// register renaming — §6.2.3).
    #[inline]
    pub fn q(&self, i: usize) -> usize {
        let t = (i as u64) * (self.n as u64) - self.fd_a.div(i as u64);
        self.fd_m.rem(t) as usize
    }

    /// Inverse row-permutation gather index `q^-1(i)` (Eq. 34):
    /// `(floor((c-1+i)/c) * b^-1) mod a + (((c-1)*i) mod c) * a`,
    /// with `b^-1 = mmi(b, a)`. Used by R2C.
    #[inline]
    pub fn q_inv(&self, i: usize) -> usize {
        let (c, a) = (self.c as u64, self.a as u64);
        let i = i as u64;
        let hi = self
            .fd_a
            .rem(match self.b_inv.checked_mul(self.fd_c.div(c - 1 + i)) {
                Some(p) => p,
                // b_inv < a; reduce the quotient mod a first in the huge case.
                None => {
                    return ((self.b_inv as u128 * self.fd_c.div(c - 1 + i) as u128 % a as u128)
                        as u64
                        + self.fd_c.rem((c - 1) * self.fd_c.rem(i)) * a)
                        as usize;
                }
            });
        // ((c-1)*i) mod c == ((c-1)*(i mod c)) mod c, keeping the product
        // within c^2 <= m*n <= 2^64.
        let lo = self.fd_c.rem((c - 1) * self.fd_c.rem(i));
        (hi + lo * a) as usize
    }
}

/// Naive (`/`, `%`) versions of the index functions.
///
/// These are the textbook transcriptions of the paper's equations, used to
/// cross-validate the strength-reduced methods on [`C2rParams`] and as the
/// baseline for the §4.4 strength-reduction ablation benchmark.
pub mod naive {
    use crate::gcd::{cab, mmi};

    /// Shape parameters without precomputed reciprocals.
    #[derive(Debug, Clone, Copy)]
    pub struct Shape {
        /// Rows.
        pub m: usize,
        /// Columns.
        pub n: usize,
        /// `gcd(m, n)`.
        pub c: usize,
        /// `m / c`.
        pub a: usize,
        /// `n / c`.
        pub b: usize,
        /// `a^-1 mod b`.
        pub a_inv: u64,
        /// `b^-1 mod a`.
        pub b_inv: u64,
    }

    impl Shape {
        /// Derive the decomposition parameters for an `m x n` matrix.
        pub fn new(m: usize, n: usize) -> Shape {
            let (c, a, b) = cab(m, n);
            Shape {
                m,
                n,
                c,
                a,
                b,
                a_inv: mmi(a as u64, b as u64),
                b_inv: mmi(b as u64, a as u64),
            }
        }

        /// Eq. 23.
        pub fn r(&self, j: usize, i: usize) -> usize {
            (i + j / self.b) % self.m
        }

        /// Eq. 36.
        pub fn r_inv(&self, j: usize, i: usize) -> usize {
            (i + self.m - (j / self.b) % self.m) % self.m
        }

        /// Eq. 24.
        pub fn d(&self, i: usize, j: usize) -> usize {
            ((i + j / self.b) % self.m + j * self.m) % self.n
        }

        /// Eq. 31.
        pub fn d_inv(&self, i: usize, j: usize) -> usize {
            let f = if i + self.c <= self.m + (j % self.c) {
                j + i * (self.n - 1)
            } else {
                j + i * (self.n - 1) + self.m
            };
            ((self.a_inv as usize * (f / self.c)) % self.b) + (f % self.c) * self.b
        }

        /// Eq. 26.
        pub fn s(&self, j: usize, i: usize) -> usize {
            (j + i * self.n - i / self.a) % self.m
        }

        /// Eq. 32.
        pub fn p(&self, j: usize, i: usize) -> usize {
            (i + j) % self.m
        }

        /// Eq. 35.
        pub fn p_inv(&self, j: usize, i: usize) -> usize {
            (i + self.m - j % self.m) % self.m
        }

        /// Eq. 33.
        pub fn q(&self, i: usize) -> usize {
            (i * self.n - i / self.a) % self.m
        }

        /// Eq. 34.
        #[allow(clippy::manual_div_ceil)] // keep Eq. 34's literal form
        pub fn q_inv(&self, i: usize) -> usize {
            ((self.c - 1 + i) / self.c * self.b_inv as usize) % self.a
                + (((self.c - 1) * i) % self.c) * self.a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        for m in 1..=12 {
            for n in 1..=12 {
                v.push((m, n));
            }
        }
        // Larger, structurally diverse shapes: coprime, square, huge gcd,
        // prime dims, skinny both ways.
        v.extend_from_slice(&[
            (1, 97),
            (97, 1),
            (64, 64),
            (64, 48),
            (48, 64),
            (101, 103),
            (100, 250),
            (3, 1024),
            (1024, 3),
            (96, 96),
        ]);
        v
    }

    #[test]
    fn fast_matches_naive() {
        for (m, n) in shapes() {
            let p = C2rParams::new(m, n);
            let s = naive::Shape::new(m, n);
            for i in 0..m.min(40) {
                for j in 0..n.min(40) {
                    assert_eq!(p.r(j, i), s.r(j, i), "r m={m} n={n} i={i} j={j}");
                    assert_eq!(p.r_inv(j, i), s.r_inv(j, i), "r_inv {m}x{n} {i},{j}");
                    assert_eq!(p.d(i, j), s.d(i, j), "d {m}x{n} {i},{j}");
                    assert_eq!(p.d_inv(i, j), s.d_inv(i, j), "d_inv {m}x{n} {i},{j}");
                    assert_eq!(p.s(j, i), s.s(j, i), "s {m}x{n} {i},{j}");
                    assert_eq!(p.p(j, i), s.p(j, i), "p {m}x{n} {i},{j}");
                    assert_eq!(p.p_inv(j, i), s.p_inv(j, i), "p_inv {m}x{n} {i},{j}");
                }
            }
            for i in 0..m {
                assert_eq!(p.q(i), s.q(i), "q {m}x{n} {i}");
                assert_eq!(p.q_inv(i), s.q_inv(i), "q_inv {m}x{n} {i}");
            }
        }
    }

    #[test]
    fn d_is_bijective_per_row() {
        // Theorem 3: d'_i is a bijection on [0, n) for every fixed i.
        for (m, n) in shapes() {
            let p = C2rParams::new(m, n);
            for i in 0..m {
                let mut seen = vec![false; n];
                for j in 0..n {
                    let t = p.d(i, j);
                    assert!(t < n);
                    assert!(!seen[t], "d collision {m}x{n} row {i}");
                    seen[t] = true;
                }
            }
        }
    }

    #[test]
    fn d_unrotated_periodicity() {
        // Lemma 1: d_i(j + k*b) == d_i(j); bijective iff c == 1.
        for (m, n) in shapes() {
            let p = C2rParams::new(m, n);
            for i in 0..m.min(8) {
                for j in 0..n {
                    for k in 1..=3usize {
                        if j + k * p.b < n {
                            assert_eq!(
                                p.d_unrotated(i, j),
                                p.d_unrotated(i, j + k * p.b),
                                "period {m}x{n}"
                            );
                        }
                    }
                }
                if p.coprime() {
                    let mut seen = vec![false; n];
                    for j in 0..n {
                        let t = p.d_unrotated(i, j);
                        assert!(!seen[t], "coprime d_i must be bijective");
                        seen[t] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn d_inv_inverts_d() {
        for (m, n) in shapes() {
            let p = C2rParams::new(m, n);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(p.d_inv(i, p.d(i, j)), j, "{m}x{n} row {i} col {j}");
                    assert_eq!(p.d(i, p.d_inv(i, j)), j, "{m}x{n} row {i} col {j}");
                }
            }
        }
    }

    #[test]
    fn q_inv_inverts_q() {
        for (m, n) in shapes() {
            let p = C2rParams::new(m, n);
            for i in 0..m {
                assert_eq!(p.q_inv(p.q(i)), i, "{m}x{n} i={i}");
                assert_eq!(p.q(p.q_inv(i)), i, "{m}x{n} i={i}");
            }
        }
    }

    #[test]
    fn s_decomposes_into_p_compose_q() {
        // §4.2: (p_j ∘ q)(i) = s'_j(i).
        for (m, n) in shapes() {
            let p = C2rParams::new(m, n);
            for j in 0..n {
                for i in 0..m {
                    assert_eq!(p.p(j, p.q(i)), p.s(j, i), "{m}x{n} j={j} i={i}");
                }
            }
        }
    }

    #[test]
    fn s_is_bijective_per_column() {
        for (m, n) in shapes() {
            let p = C2rParams::new(m, n);
            for j in 0..n {
                let mut seen = vec![false; m];
                for i in 0..m {
                    let t = p.s(j, i);
                    assert!(!seen[t], "s collision {m}x{n} col {j}");
                    seen[t] = true;
                }
            }
        }
    }

    #[test]
    fn rotations_invert() {
        for (m, n) in shapes() {
            let p = C2rParams::new(m, n);
            for j in 0..n {
                for i in 0..m {
                    assert_eq!(p.r_inv(j, p.r(j, i)), i);
                    assert_eq!(p.p_inv(j, p.p(j, i)), i);
                }
            }
        }
    }

    #[test]
    fn paper_worked_example() {
        // §2: m = 3, n = 8, element at (i, j) = (2, 0) moves to (1, 5).
        let p = C2rParams::new(3, 8);
        let (i, j) = (2usize, 0usize);
        let i_dst = (j + i * 8) % 3;
        let j_dst = (j + i * 8) / 3;
        assert_eq!((i_dst, j_dst), (1, 5));
        // Coprime case: d' == d (no rotation), per the note after Theorem 3.
        assert!(p.coprime());
        for ii in 0..3 {
            for jj in 0..8 {
                assert_eq!(p.d(ii, jj), p.d_unrotated(ii, jj));
            }
        }
    }

    #[test]
    fn fig2_d_rows() {
        // The 4x8 example of Figure 2 (hand-verified against the paper).
        let p = C2rParams::new(4, 8);
        let d0: Vec<usize> = (0..8).map(|j| p.d(0, j)).collect();
        let d1: Vec<usize> = (0..8).map(|j| p.d(1, j)).collect();
        assert_eq!(d0, [0, 4, 1, 5, 2, 6, 3, 7]);
        assert_eq!(d1, [1, 5, 2, 6, 3, 7, 0, 4]);
        let d0_inv: Vec<usize> = (0..8).map(|j| p.d_inv(0, j)).collect();
        assert_eq!(d0_inv, [0, 2, 4, 6, 1, 3, 5, 7]);
        let d1_inv: Vec<usize> = (0..8).map(|j| p.d_inv(1, j)).collect();
        assert_eq!(d1_inv, [6, 0, 2, 4, 7, 1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_rows_panics() {
        C2rParams::new(0, 5);
    }
}
