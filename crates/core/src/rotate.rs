//! In-place vector rotation via analytic cycle following (paper §4.6).
//!
//! Rotating a vector of `m` elements left by `r` places (gather form:
//! `new[i] = old[(i + r) mod m]`) decomposes into `z = gcd(m, r)` cycles of
//! length `m / z` each, with cycle `y`'s elements given analytically by
//! `l_y(x) = (y + x*(m - r)) mod m`. Because the cycles are analytic, no
//! cycle descriptors need to be stored — the property that makes the
//! paper's cache-aware coarse rotation (and our strided column rotation)
//! possible with zero extra memory.

use crate::gcd::gcd;

/// Rotate `v` left by `r`: afterwards `v[i] == old[(i + r) mod v.len()]`.
///
/// Zero auxiliary space; each element is read once and written once.
///
/// ```
/// use ipt_core::rotate::rotate_left_cycles;
///
/// let mut v = [1, 2, 3, 4, 5];
/// rotate_left_cycles(&mut v, 2);
/// assert_eq!(v, [3, 4, 5, 1, 2]);
/// ```
pub fn rotate_left_cycles<T: Copy>(v: &mut [T], r: usize) {
    let m = v.len();
    if m == 0 {
        return;
    }
    let r = r % m;
    if r == 0 {
        return;
    }
    let z = gcd(m as u64, r as u64) as usize;
    for y in 0..z {
        // Follow cycle y: positions y, y+r, y+2r, ... (mod m); each
        // position receives the value of the next.
        let mut i = y;
        let saved = v[y];
        loop {
            let src = i + r - if i + r >= m { m } else { 0 };
            if src == y {
                v[i] = saved;
                break;
            }
            v[i] = v[src];
            i = src;
        }
    }
}

/// Rotate `v` right by `r`: afterwards `v[i] == old[(i + m - r) mod m]`.
pub fn rotate_right_cycles<T: Copy>(v: &mut [T], r: usize) {
    let m = v.len();
    if m == 0 {
        return;
    }
    rotate_left_cycles(v, (m - r % m) % m);
}

/// Rotate a strided sequence left by `r` in place.
///
/// The sequence is `data[start + k*stride]` for `k` in `[0, len)` — e.g. a
/// matrix column when `stride == n`. Same analytic cycle structure as
/// [`rotate_left_cycles`], applied through the stride.
pub fn rotate_strided_left<T: Copy>(
    data: &mut [T],
    start: usize,
    stride: usize,
    len: usize,
    r: usize,
) {
    if len == 0 {
        return;
    }
    let r = r % len;
    if r == 0 {
        return;
    }
    debug_assert!(start + (len - 1) * stride < data.len());
    let z = gcd(len as u64, r as u64) as usize;
    for y in 0..z {
        let mut i = y;
        let saved = data[start + y * stride];
        loop {
            let src = i + r - if i + r >= len { len } else { 0 };
            if src == y {
                data[start + i * stride] = saved;
                break;
            }
            data[start + i * stride] = data[start + src * stride];
            i = src;
        }
    }
}

/// The analytic element enumeration of cycle `y` of an `m`-rotate-by-`r`:
/// `l_y(x) = (y + x*(m - r)) mod m` (paper §4.6).
///
/// Exposed for tests and for the warp simulator's rotation planner.
pub fn cycle_element(m: usize, r: usize, y: usize, x: usize) -> usize {
    debug_assert!(r < m && y < m);
    // Compute with u128 to tolerate adversarial x in property tests.
    ((y as u128 + (x as u128) * ((m - r) as u128)) % m as u128) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_rotate_left<T: Copy>(v: &[T], r: usize) -> Vec<T> {
        let m = v.len();
        (0..m).map(|i| v[(i + r) % m]).collect()
    }

    #[test]
    fn matches_reference_exhaustively() {
        for m in 0..=24usize {
            for r in 0..=2 * m.max(1) {
                let orig: Vec<u32> = (0..m as u32).collect();
                let mut v = orig.clone();
                rotate_left_cycles(&mut v, r);
                assert_eq!(v, reference_rotate_left(&orig, r % m.max(1)), "m={m} r={r}");
            }
        }
    }

    #[test]
    fn right_inverts_left() {
        for m in 1..=20usize {
            for r in 0..m {
                let orig: Vec<u16> = (0..m as u16).collect();
                let mut v = orig.clone();
                rotate_left_cycles(&mut v, r);
                rotate_right_cycles(&mut v, r);
                assert_eq!(v, orig, "m={m} r={r}");
            }
        }
    }

    #[test]
    fn strided_rotates_a_matrix_column() {
        // 4x3 row-major; rotate column 1 left by 2.
        let mut a: Vec<u32> = (0..12).collect();
        rotate_strided_left(&mut a, 1, 3, 4, 2);
        // Column 1 was [1, 4, 7, 10]; rotated left 2 -> [7, 10, 1, 4].
        assert_eq!(a, [0, 7, 2, 3, 10, 5, 6, 1, 8, 9, 4, 11]);
    }

    #[test]
    fn strided_with_stride_one_equals_contiguous() {
        for len in 1..=16usize {
            for r in 0..len {
                let mut a: Vec<u8> = (0..len as u8).collect();
                let mut b = a.clone();
                rotate_left_cycles(&mut a, r);
                rotate_strided_left(&mut b, 0, 1, len, r);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn cycle_enumeration_covers_all_indices() {
        // The z cycles of length m/z partition [0, m) (paper §4.6).
        for m in 1..=30usize {
            for r in 1..m {
                let z = gcd(m as u64, r as u64) as usize;
                let clen = m / z;
                let mut seen = vec![false; m];
                for y in 0..z {
                    for x in 0..clen {
                        let e = cycle_element(m, r, y, x);
                        assert!(!seen[e], "duplicate in cycles m={m} r={r}");
                        seen[e] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn cycle_enumeration_is_consistent_with_rotation() {
        // Successive cycle elements are rotation predecessors: the value at
        // l_y(x+1) moves to l_y(x) under a left-rotate... verify the gather
        // relation new[l] = old[(l + r) mod m] along the analytic cycle.
        let (m, r) = (12usize, 8usize);
        let z = gcd(m as u64, r as u64) as usize;
        for y in 0..z {
            for x in 0..m / z {
                let cur = cycle_element(m, r, y, x);
                let next = cycle_element(m, r, y, x + 1);
                // Stepping the enumeration adds (m - r), i.e. moves to the
                // rotation source's predecessor.
                assert_eq!((cur + m - r) % m, next);
            }
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let mut v: Vec<u8> = vec![];
        rotate_left_cycles(&mut v, 3);
        let mut one = vec![42u8];
        rotate_left_cycles(&mut one, 1);
        assert_eq!(one, [42]);
    }
}
