//! General cycle-following machinery (paper §4.7).
//!
//! The row permutation `q` has no analytic cycle structure, so the paper's
//! cache-aware row permute computes its cycles dynamically. The number of
//! cycles of length greater than one is bounded by `m / 2`, so the leaders
//! and lengths fit in the `O(m)` scratch budget. Because all rows are
//! permuted identically, one cycle set drives the movement of every column
//! group.
//!
//! This module also powers the classic cycle-following transposition
//! baseline in `ipt-baselines`.

/// The cycle decomposition of a permutation on `[0, len)`.
///
/// Only cycles of length `>= 2` are stored (fixed points move nothing).
///
/// ```
/// use ipt_core::cycles::{apply_gather_in_place, CycleSet};
///
/// // The rotation i -> (i + 2) mod 6 splits into gcd(6, 2) = 2 cycles.
/// let perm = |i: usize| (i + 2) % 6;
/// let cycles = CycleSet::build(6, perm);
/// assert_eq!(cycles.cycle_count(), 2);
///
/// let mut v = [10, 11, 12, 13, 14, 15];
/// apply_gather_in_place(&mut v, perm, &cycles);
/// assert_eq!(v, [12, 13, 14, 15, 10, 11]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSet {
    /// One representative (leader) per non-trivial cycle.
    pub leaders: Vec<usize>,
    /// Length of the cycle rooted at the matching leader.
    pub lengths: Vec<usize>,
    len: usize,
}

impl CycleSet {
    /// Decompose the permutation `perm` (given as a gather function:
    /// position `i` receives the value at `perm(i)`) on domain `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `perm` is not a permutation.
    pub fn build(len: usize, perm: impl Fn(usize) -> usize) -> CycleSet {
        let mut visited = vec![false; len];
        let mut leaders = Vec::new();
        let mut lengths = Vec::new();
        for start in 0..len {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            let mut i = perm(start);
            debug_assert!(i < len, "perm({start}) = {i} out of range");
            let mut clen = 1usize;
            while i != start {
                debug_assert!(!visited[i], "perm is not a permutation");
                visited[i] = true;
                i = perm(i);
                clen += 1;
            }
            if clen > 1 {
                leaders.push(start);
                lengths.push(clen);
            }
        }
        CycleSet {
            leaders,
            lengths,
            len,
        }
    }

    /// Number of non-trivial cycles.
    pub fn cycle_count(&self) -> usize {
        self.leaders.len()
    }

    /// Domain size the permutation was decomposed over.
    pub fn domain(&self) -> usize {
        self.len
    }

    /// Total number of elements that move (sum of non-trivial cycle lengths).
    pub fn moved(&self) -> usize {
        self.lengths.iter().sum()
    }
}

/// Apply the gather permutation `dst[i] = src[perm(i)]` in place on `v`,
/// following precomputed cycles with one element of temporary storage.
pub fn apply_gather_in_place<T: Copy>(
    v: &mut [T],
    perm: impl Fn(usize) -> usize,
    cycles: &CycleSet,
) {
    debug_assert_eq!(v.len(), cycles.domain());
    for &leader in &cycles.leaders {
        let saved = v[leader];
        let mut i = leader;
        loop {
            let src = perm(i);
            if src == leader {
                v[i] = saved;
                break;
            }
            v[i] = v[src];
            i = src;
        }
    }
}

/// Apply a gather permutation to *rows* of a row-major `len x width` matrix
/// in place: row `i` receives old row `perm(i)`. One row of scratch.
///
/// This is the whole-row form used by the column-shuffle decomposition
/// (`q`/`q_inv` act identically on every column, §4.2).
pub fn apply_gather_rows_in_place<T: Copy>(
    data: &mut [T],
    width: usize,
    perm: impl Fn(usize) -> usize,
    cycles: &CycleSet,
    row_buf: &mut [T],
) {
    let len = cycles.domain();
    debug_assert_eq!(data.len(), len * width);
    debug_assert!(row_buf.len() >= width);
    let row_buf = &mut row_buf[..width];
    for &leader in &cycles.leaders {
        row_buf.copy_from_slice(&data[leader * width..(leader + 1) * width]);
        let mut i = leader;
        loop {
            let src = perm(i);
            if src == leader {
                data[i * width..(i + 1) * width].copy_from_slice(row_buf);
                break;
            }
            data.copy_within(src * width..(src + 1) * width, i * width);
            i = src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_gather<T: Copy>(v: &[T], perm: impl Fn(usize) -> usize) -> Vec<T> {
        (0..v.len()).map(|i| v[perm(i)]).collect()
    }

    #[test]
    fn identity_has_no_cycles() {
        let cs = CycleSet::build(10, |i| i);
        assert_eq!(cs.cycle_count(), 0);
        assert_eq!(cs.moved(), 0);
    }

    #[test]
    fn single_swap() {
        let perm = |i: usize| match i {
            2 => 7,
            7 => 2,
            other => other,
        };
        let cs = CycleSet::build(10, perm);
        assert_eq!(cs.cycle_count(), 1);
        assert_eq!(cs.lengths, [2]);
        let mut v: Vec<u32> = (0..10).collect();
        apply_gather_in_place(&mut v, perm, &cs);
        assert_eq!(v, reference_gather(&(0..10).collect::<Vec<_>>(), perm));
    }

    #[test]
    fn full_cycle_rotation() {
        let n = 9;
        let perm = move |i: usize| (i + 4) % n;
        let cs = CycleSet::build(n, perm);
        assert_eq!(cs.cycle_count(), 1, "gcd(9, 4) = 1: a single cycle");
        assert_eq!(cs.lengths, [9]);
        let mut v: Vec<u32> = (0..n as u32).collect();
        apply_gather_in_place(&mut v, perm, &cs);
        let want: Vec<u32> = (0..n).map(|i| ((i + 4) % n) as u32).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn nontrivial_cycle_bound() {
        // At most m/2 cycles of length >= 2 (paper §4.7).
        for n in 1..=64usize {
            for shift in 0..n {
                let cs = CycleSet::build(n, move |i| (i + shift) % n);
                assert!(cs.cycle_count() <= n / 2, "n={n} shift={shift}");
            }
        }
    }

    #[test]
    fn randomized_permutations_round_trip() {
        // Deterministic pseudo-random permutations via multiplicative map:
        // i -> (i * g) mod p for prime p is a permutation.
        for (p, g) in [(11usize, 7usize), (13, 6), (31, 3), (97, 5)] {
            let perm = move |i: usize| (i * g) % p;
            let cs = CycleSet::build(p, perm);
            let orig: Vec<u64> = (0..p as u64).collect();
            let mut v = orig.clone();
            apply_gather_in_place(&mut v, perm, &cs);
            assert_eq!(v, reference_gather(&orig, perm));
        }
    }

    #[test]
    fn row_gather_matches_elementwise() {
        let (rows, width) = (12usize, 5usize);
        let perm = move |i: usize| (i * 5) % rows; // gcd(5, 12) = 1
        let cs = CycleSet::build(rows, perm);
        let orig: Vec<u32> = (0..(rows * width) as u32).collect();
        let mut v = orig.clone();
        let mut buf = vec![0u32; width];
        apply_gather_rows_in_place(&mut v, width, perm, &cs, &mut buf);
        for i in 0..rows {
            for j in 0..width {
                assert_eq!(v[i * width + j], orig[perm(i) * width + j]);
            }
        }
    }

    #[test]
    fn moved_counts_non_fixed_points() {
        let perm = |i: usize| match i {
            0 => 1,
            1 => 2,
            2 => 0,
            other => other,
        };
        let cs = CycleSet::build(6, perm);
        assert_eq!(cs.moved(), 3);
        assert_eq!(cs.cycle_count(), 1);
    }
}
