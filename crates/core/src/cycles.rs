//! General cycle-following machinery (paper §4.7).
//!
//! The row permutation `q` has no analytic cycle structure, so the paper's
//! cache-aware row permute computes its cycles dynamically. The number of
//! cycles of length greater than one is bounded by `m / 2`, so the leaders
//! and lengths fit in the `O(m)` scratch budget. Because all rows are
//! permuted identically, one cycle set drives the movement of every column
//! group.
//!
//! This module also powers the classic cycle-following transposition
//! baseline in `ipt-baselines`.

/// The cycle decomposition of a permutation on `[0, len)`.
///
/// Only cycles of length `>= 2` are stored (fixed points move nothing).
///
/// ```
/// use ipt_core::cycles::{apply_gather_in_place, CycleSet};
///
/// // The rotation i -> (i + 2) mod 6 splits into gcd(6, 2) = 2 cycles.
/// let perm = |i: usize| (i + 2) % 6;
/// let cycles = CycleSet::build(6, perm);
/// assert_eq!(cycles.cycle_count(), 2);
///
/// let mut v = [10, 11, 12, 13, 14, 15];
/// apply_gather_in_place(&mut v, perm, &cycles);
/// assert_eq!(v, [12, 13, 14, 15, 10, 11]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSet {
    /// One representative (leader) per non-trivial cycle.
    pub leaders: Vec<usize>,
    /// Length of the cycle rooted at the matching leader.
    pub lengths: Vec<usize>,
    len: usize,
}

impl CycleSet {
    /// Decompose the permutation `perm` (given as a gather function:
    /// position `i` receives the value at `perm(i)`) on domain `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `perm` is not a permutation.
    pub fn build(len: usize, perm: impl Fn(usize) -> usize) -> CycleSet {
        let mut visited = vec![false; len];
        let mut leaders = Vec::new();
        let mut lengths = Vec::new();
        for start in 0..len {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            let mut i = perm(start);
            debug_assert!(i < len, "perm({start}) = {i} out of range");
            let mut clen = 1usize;
            while i != start {
                debug_assert!(!visited[i], "perm is not a permutation");
                visited[i] = true;
                i = perm(i);
                clen += 1;
            }
            if clen > 1 {
                leaders.push(start);
                lengths.push(clen);
            }
        }
        CycleSet {
            leaders,
            lengths,
            len,
        }
    }

    /// Number of non-trivial cycles.
    pub fn cycle_count(&self) -> usize {
        self.leaders.len()
    }

    /// Domain size the permutation was decomposed over.
    pub fn domain(&self) -> usize {
        self.len
    }

    /// Total number of elements that move (sum of non-trivial cycle lengths).
    pub fn moved(&self) -> usize {
        self.lengths.iter().sum()
    }
}

/// One balanced bundle of cycles produced by [`partition_bundles`].
///
/// `members` are indices into the owning [`CycleSet`]'s parallel
/// `leaders` / `lengths` arrays, and `weight` is the total number of rows
/// the bundle moves (the sum of its member cycle lengths) — the quantity
/// the partitioner balances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleBundle {
    /// Indices into [`CycleSet::leaders`] (and `lengths`) of the cycles
    /// assigned to this bundle.
    pub members: Vec<usize>,
    /// Sum of the member cycles' lengths (rows moved by this bundle).
    pub weight: usize,
}

/// Partition a cycle set's non-trivial cycles into at most `max_bundles`
/// weight-balanced bundles using longest-processing-time (LPT) list
/// scheduling on cycle length.
///
/// Cycle lengths are badly distributed in general — the very reason the
/// paper prefers the C2R decomposition over raw cycle following — so a
/// naive even split of *leaders* can put one giant cycle next to a pile of
/// 2-cycles. LPT (place each cycle, longest first, into the currently
/// lightest bundle) guarantees a makespan within 4/3 of optimal, which is
/// all the balance a static scheduler needs.
///
/// Every non-trivial cycle appears in exactly one bundle. Empty bundles
/// are never returned: the result has `min(max_bundles, cycle_count)`
/// entries (zero for an identity permutation). `max_bundles == 0` is
/// treated as 1.
///
/// ```
/// use ipt_core::cycles::{partition_bundles, CycleSet};
///
/// // i -> (i + 2) mod 8: two 4-cycles.
/// let cycles = CycleSet::build(8, |i| (i + 2) % 8);
/// let bundles = partition_bundles(&cycles, 2);
/// assert_eq!(bundles.len(), 2);
/// assert!(bundles.iter().all(|b| b.weight == 4));
/// ```
pub fn partition_bundles(cycles: &CycleSet, max_bundles: usize) -> Vec<CycleBundle> {
    let count = cycles.cycle_count();
    let n_bundles = max_bundles.max(1).min(count);
    if n_bundles == 0 {
        return Vec::new();
    }
    // Longest first: sort cycle indices by length descending (stable, so
    // equal-length cycles keep leader order and the result is
    // deterministic).
    let mut order: Vec<usize> = (0..count).collect();
    order.sort_by(|&a, &b| cycles.lengths[b].cmp(&cycles.lengths[a]));
    let mut bundles: Vec<CycleBundle> = (0..n_bundles)
        .map(|_| CycleBundle {
            members: Vec::new(),
            weight: 0,
        })
        .collect();
    for idx in order {
        // Bundle counts are a small multiple of the thread count, so a
        // linear scan for the lightest bundle beats heap bookkeeping.
        let lightest = bundles
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| b.weight)
            .map(|(i, _)| i)
            .expect("n_bundles >= 1");
        bundles[lightest].members.push(idx);
        bundles[lightest].weight += cycles.lengths[idx];
    }
    bundles
}

/// Apply the gather permutation `dst[i] = src[perm(i)]` in place on `v`,
/// following precomputed cycles with one element of temporary storage.
pub fn apply_gather_in_place<T: Copy>(
    v: &mut [T],
    perm: impl Fn(usize) -> usize,
    cycles: &CycleSet,
) {
    debug_assert_eq!(v.len(), cycles.domain());
    for &leader in &cycles.leaders {
        let saved = v[leader];
        let mut i = leader;
        loop {
            let src = perm(i);
            if src == leader {
                v[i] = saved;
                break;
            }
            v[i] = v[src];
            i = src;
        }
    }
}

/// Apply a gather permutation to *rows* of a row-major `len x width` matrix
/// in place: row `i` receives old row `perm(i)`. One row of scratch.
///
/// This is the whole-row form used by the column-shuffle decomposition
/// (`q`/`q_inv` act identically on every column, §4.2).
pub fn apply_gather_rows_in_place<T: Copy>(
    data: &mut [T],
    width: usize,
    perm: impl Fn(usize) -> usize,
    cycles: &CycleSet,
    row_buf: &mut [T],
) {
    let len = cycles.domain();
    debug_assert_eq!(data.len(), len * width);
    debug_assert!(row_buf.len() >= width);
    let row_buf = &mut row_buf[..width];
    for &leader in &cycles.leaders {
        row_buf.copy_from_slice(&data[leader * width..(leader + 1) * width]);
        let mut i = leader;
        loop {
            let src = perm(i);
            if src == leader {
                data[i * width..(i + 1) * width].copy_from_slice(row_buf);
                break;
            }
            data.copy_within(src * width..(src + 1) * width, i * width);
            i = src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_gather<T: Copy>(v: &[T], perm: impl Fn(usize) -> usize) -> Vec<T> {
        (0..v.len()).map(|i| v[perm(i)]).collect()
    }

    #[test]
    fn identity_has_no_cycles() {
        let cs = CycleSet::build(10, |i| i);
        assert_eq!(cs.cycle_count(), 0);
        assert_eq!(cs.moved(), 0);
    }

    #[test]
    fn single_swap() {
        let perm = |i: usize| match i {
            2 => 7,
            7 => 2,
            other => other,
        };
        let cs = CycleSet::build(10, perm);
        assert_eq!(cs.cycle_count(), 1);
        assert_eq!(cs.lengths, [2]);
        let mut v: Vec<u32> = (0..10).collect();
        apply_gather_in_place(&mut v, perm, &cs);
        assert_eq!(v, reference_gather(&(0..10).collect::<Vec<_>>(), perm));
    }

    #[test]
    fn full_cycle_rotation() {
        let n = 9;
        let perm = move |i: usize| (i + 4) % n;
        let cs = CycleSet::build(n, perm);
        assert_eq!(cs.cycle_count(), 1, "gcd(9, 4) = 1: a single cycle");
        assert_eq!(cs.lengths, [9]);
        let mut v: Vec<u32> = (0..n as u32).collect();
        apply_gather_in_place(&mut v, perm, &cs);
        let want: Vec<u32> = (0..n).map(|i| ((i + 4) % n) as u32).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn nontrivial_cycle_bound() {
        // At most m/2 cycles of length >= 2 (paper §4.7).
        for n in 1..=64usize {
            for shift in 0..n {
                let cs = CycleSet::build(n, move |i| (i + shift) % n);
                assert!(cs.cycle_count() <= n / 2, "n={n} shift={shift}");
            }
        }
    }

    #[test]
    fn randomized_permutations_round_trip() {
        // Deterministic pseudo-random permutations via multiplicative map:
        // i -> (i * g) mod p for prime p is a permutation.
        for (p, g) in [(11usize, 7usize), (13, 6), (31, 3), (97, 5)] {
            let perm = move |i: usize| (i * g) % p;
            let cs = CycleSet::build(p, perm);
            let orig: Vec<u64> = (0..p as u64).collect();
            let mut v = orig.clone();
            apply_gather_in_place(&mut v, perm, &cs);
            assert_eq!(v, reference_gather(&orig, perm));
        }
    }

    #[test]
    fn row_gather_matches_elementwise() {
        let (rows, width) = (12usize, 5usize);
        let perm = move |i: usize| (i * 5) % rows; // gcd(5, 12) = 1
        let cs = CycleSet::build(rows, perm);
        let orig: Vec<u32> = (0..(rows * width) as u32).collect();
        let mut v = orig.clone();
        let mut buf = vec![0u32; width];
        apply_gather_rows_in_place(&mut v, width, perm, &cs, &mut buf);
        for i in 0..rows {
            for j in 0..width {
                assert_eq!(v[i * width + j], orig[perm(i) * width + j]);
            }
        }
    }

    /// Shared property check: every cycle index in exactly one bundle,
    /// weights consistent, and LPT balance within 2x of the optimal lower
    /// bound max(ceil(total / k), longest cycle).
    fn check_bundles(cycles: &CycleSet, max_bundles: usize) {
        let bundles = partition_bundles(cycles, max_bundles);
        let count = cycles.cycle_count();
        assert_eq!(bundles.len(), max_bundles.max(1).min(count));
        let mut seen = vec![0usize; count];
        for b in &bundles {
            assert!(!b.members.is_empty(), "no empty bundles");
            let mut weight = 0;
            for &idx in &b.members {
                seen[idx] += 1;
                weight += cycles.lengths[idx];
            }
            assert_eq!(b.weight, weight, "stored weight matches members");
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "every cycle in exactly one bundle: {seen:?}"
        );
        if count == 0 {
            return;
        }
        let total: usize = cycles.moved();
        let k = bundles.len();
        let longest = *cycles.lengths.iter().max().unwrap();
        let optimal_floor = longest.max(total.div_ceil(k));
        let max_weight = bundles.iter().map(|b| b.weight).max().unwrap();
        // LPT guarantees 4/3 of optimal; 2x leaves slack without letting a
        // naive leader-order split (which can be k times worse) pass.
        assert!(
            max_weight <= 2 * optimal_floor,
            "max bundle weight {max_weight} > 2 x optimal floor {optimal_floor}"
        );
    }

    #[test]
    fn bundles_partition_exactly_and_balance() {
        // Multiplicative permutations give badly distributed cycle lengths
        // (the motivating case), rotations give uniform ones.
        for (p, g) in [(11usize, 7usize), (97, 5), (127, 3), (251, 6)] {
            let cs = CycleSet::build(p, move |i| (i * g) % p);
            for k in [1, 2, 3, 4, 7, 16, 1000] {
                check_bundles(&cs, k);
            }
        }
        for shift in 1..8 {
            let cs = CycleSet::build(24, move |i| (i + shift) % 24);
            for k in [1, 2, 4, 8] {
                check_bundles(&cs, k);
            }
        }
    }

    #[test]
    fn bundles_handle_degenerate_inputs() {
        // Identity: no cycles, no bundles.
        let id = CycleSet::build(16, |i| i);
        assert!(partition_bundles(&id, 4).is_empty());
        // Single swap: one bundle no matter how many were requested.
        let swap = CycleSet::build(4, |i| match i {
            0 => 1,
            1 => 0,
            other => other,
        });
        let bundles = partition_bundles(&swap, 8);
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].weight, 2);
        // max_bundles == 0 is treated as 1.
        assert_eq!(partition_bundles(&swap, 0).len(), 1);
    }

    #[test]
    fn lpt_splits_one_giant_cycle_away_from_the_small_ones() {
        // Permutation with one long cycle (length 13) plus six 2-cycles:
        // a leader-order split into 2 bundles of 3-4 cycles each would put
        // weight 13+ in one bundle; LPT isolates the giant.
        let perm = |i: usize| {
            if i < 13 {
                (i + 1) % 13
            } else {
                // pairs (13 14)(15 16)...(23 24)
                if (i - 13) % 2 == 0 {
                    i + 1
                } else {
                    i - 1
                }
            }
        };
        let cs = CycleSet::build(25, perm);
        assert_eq!(cs.cycle_count(), 7);
        let bundles = partition_bundles(&cs, 2);
        let mut weights: Vec<usize> = bundles.iter().map(|b| b.weight).collect();
        weights.sort();
        assert_eq!(weights, [12, 13], "giant cycle isolated from the 2-cycles");
        check_bundles(&cs, 2);
    }

    #[test]
    fn moved_counts_non_fixed_points() {
        let perm = |i: usize| match i {
            0 => 1,
            1 => 2,
            2 => 0,
            other => other,
        };
        let cs = CycleSet::build(6, perm);
        assert_eq!(cs.moved(), 3);
        assert_eq!(cs.cycle_count(), 1);
    }
}
