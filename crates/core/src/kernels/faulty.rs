//! Deterministic fault injection for the concurrency correctness layer.
//!
//! The disjointness checker (`ipt-parallel`'s checked `UnsafeSlice`) and
//! the executor's panic containment (`ipt_pool::PoolError`) are safety
//! nets — and a safety net that has never caught anything is untested.
//! This module injects the two faults those nets exist for, on demand:
//!
//! * **panics** inside worker closures ([`maybe_panic`]), which the pool
//!   must contain at the chunk boundary and surface as a structured
//!   error, and
//! * **index skews** in column-group operations ([`skew_column`]), which
//!   redirect an access outside the owning group's claimed columns — a
//!   synthetic off-by-one in the paper's Eq. 24/26 index math that the
//!   checker must detect on the very access that performs it.
//!
//! Injection decisions are **deterministic**: each call site hashes its
//! site name and item index through the workspace's SplitMix64
//! ([`crate::check::Rng`]) against a fixed seed, so a given (site, item)
//! either always faults or never faults at a given rate — independent of
//! thread count, scheduling, or how many other sites fired. Runs are
//! reproducible across `IPT_THREADS` values by construction.
//!
//! A third fault kind exists for the pool's hang watchdog: **hangs**
//! ([`maybe_panic`] under `hang:<rate>` sleeps forever instead of
//! panicking), which no unwinding net can catch — only the deadline-based
//! `IPT_WATCHDOG_MS` monitor in `ipt_pool::watchdog`. Never inject hangs
//! in an in-process test: the stuck worker thread cannot be reclaimed.
//! Hang coverage lives in out-of-process CLI smokes wrapped in `timeout`.
//!
//! Everything here is gated behind the default-off `fault-inject`
//! feature: without it the two entry points compile to `#[inline(always)]`
//! no-ops (zero cost in production builds), and the `IPT_FAULT` knob is
//! ignored. With the feature, the mode comes from `IPT_FAULT`
//! (`panic:<rate>`, `skew:<rate>`, or `hang:<rate>`, rate in `[0, 1]`) or
//! from a programmatic `force` override (for in-process tests that need
//! several modes in one binary).

/// A fault-injection directive: what to inject and at which per-item rate.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Panic inside worker closures at the given rate.
    Panic(f64),
    /// Skew column indices outside the owning group at the given rate.
    Skew(f64),
    /// Sleep forever inside worker closures at the given rate (watchdog
    /// prey — see the module docs for why this is CLI-smoke-only).
    Hang(f64),
}

#[cfg(feature = "fault-inject")]
mod active {
    use super::FaultMode;
    use crate::check::Rng;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    /// Fixed seed for injection decisions: determinism is the whole point.
    const SEED: u64 = 0x1975_F4A7_C15B_F0D1;

    /// `IPT_FAULT` parsed once.
    static ENV_MODE: OnceLock<Option<FaultMode>> = OnceLock::new();

    /// Programmatic override, encoded lock-free so the per-item fast path
    /// never takes a lock: `FORCED_UNSET` = use the environment,
    /// `FORCED_OFF` = forced no-injection, else `kind << 32 | f32 bits`.
    static FORCED: AtomicU64 = AtomicU64::new(FORCED_UNSET);
    const FORCED_UNSET: u64 = 0;
    const FORCED_OFF: u64 = 1;
    const KIND_PANIC: u64 = 2;
    const KIND_SKEW: u64 = 3;
    const KIND_HANG: u64 = 4;

    /// Panics actually injected (not merely eligible) since process start.
    static INJECTED_PANICS: AtomicU64 = AtomicU64::new(0);
    /// Skews actually injected since process start.
    static INJECTED_SKEWS: AtomicU64 = AtomicU64::new(0);
    /// Hangs actually injected since process start (counted just before
    /// the worker stops making progress, so a watchdog report can be
    /// correlated with the injection tally by an outside observer).
    static INJECTED_HANGS: AtomicU64 = AtomicU64::new(0);

    /// Parse an `IPT_FAULT` value: `panic:<rate>`, `skew:<rate>`, or
    /// `hang:<rate>` with the rate a finite number in `[0, 1]`. The kind
    /// is trimmed and case-folded like `IPT_KERNEL` values, so
    /// `" Panic : 0.05 "` works the same from any shell quoting style.
    pub fn parse_fault(raw: &str) -> Result<FaultMode, String> {
        let t = raw.trim();
        let (kind, rate) = t.split_once(':').ok_or_else(|| {
            format!("IPT_FAULT {raw:?} is not of the form panic:<rate>|skew:<rate>|hang:<rate>")
        })?;
        let rate: f64 = rate
            .trim()
            .parse()
            .map_err(|_| format!("IPT_FAULT {raw:?} has a non-numeric rate"))?;
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(format!("IPT_FAULT {raw:?} rate must be in [0, 1]"));
        }
        match kind.trim().to_ascii_lowercase().as_str() {
            "panic" => Ok(FaultMode::Panic(rate)),
            "skew" => Ok(FaultMode::Skew(rate)),
            "hang" => Ok(FaultMode::Hang(rate)),
            _ => Err(format!(
                "IPT_FAULT {raw:?} names an unknown fault kind (expected panic, skew or hang)"
            )),
        }
    }

    fn env_mode() -> Option<FaultMode> {
        // Shared warn-once contract with IPT_THREADS / IPT_KERNEL.
        crate::env::parse_once(&ENV_MODE, "IPT_FAULT", parse_fault)
    }

    fn encode(mode: Option<FaultMode>) -> u64 {
        match mode {
            None => FORCED_OFF,
            Some(FaultMode::Panic(r)) => (KIND_PANIC << 32) | u64::from((r as f32).to_bits()),
            Some(FaultMode::Skew(r)) => (KIND_SKEW << 32) | u64::from((r as f32).to_bits()),
            Some(FaultMode::Hang(r)) => (KIND_HANG << 32) | u64::from((r as f32).to_bits()),
        }
    }

    fn decode(word: u64) -> Option<FaultMode> {
        let rate = f64::from(f32::from_bits(word as u32));
        match word >> 32 {
            KIND_PANIC => Some(FaultMode::Panic(rate)),
            KIND_SKEW => Some(FaultMode::Skew(rate)),
            KIND_HANG => Some(FaultMode::Hang(rate)),
            _ => None,
        }
    }

    /// Override the fault mode for this process, bypassing `IPT_FAULT`:
    /// `Some(mode)` injects, `None` forces injection off. Intended for
    /// tests that need to exercise both fault kinds in one binary (the
    /// environment knob is parsed once and cannot change mid-process).
    pub fn force(mode: Option<FaultMode>) {
        FORCED.store(encode(mode), Ordering::Relaxed);
    }

    /// Drop any [`force`] override, restoring `IPT_FAULT` resolution.
    pub fn unforce() {
        FORCED.store(FORCED_UNSET, Ordering::Relaxed);
    }

    fn mode() -> Option<FaultMode> {
        match FORCED.load(Ordering::Relaxed) {
            FORCED_UNSET => env_mode(),
            word => decode(word),
        }
    }

    /// Faults injected so far: `(panics, skews, hangs)`. Tests bracket a
    /// region with two reads to prove "every injected fault was caught".
    pub fn injection_counts() -> (u64, u64, u64) {
        (
            INJECTED_PANICS.load(Ordering::Relaxed),
            INJECTED_SKEWS.load(Ordering::Relaxed),
            INJECTED_HANGS.load(Ordering::Relaxed),
        )
    }

    /// Deterministic per-(site, item) coin flip at `rate`.
    fn decide(site: &str, item: usize, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        // FNV-1a over the site name keeps distinct sites uncorrelated.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in site.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        let x = Rng::new(SEED ^ h ^ (item as u64).wrapping_mul(0x9e3779b97f4a7c15)).next_u64();
        ((x >> 11) as f64 / (1u64 << 53) as f64) < rate
    }

    /// Panic — or, under `hang:<rate>`, sleep forever — at the
    /// deterministic rate. Panics are the fault the pool's chunk-boundary
    /// containment must catch; hangs are the fault only the
    /// `IPT_WATCHDOG_MS` monitor can report (the loop below never
    /// returns, deliberately). `item` is the work item (row, block, batch
    /// index) so the decision is independent of thread interleaving.
    #[inline]
    pub fn maybe_panic(site: &'static str, item: usize) {
        match mode() {
            Some(FaultMode::Panic(rate)) if decide(site, item, rate) => {
                INJECTED_PANICS.fetch_add(1, Ordering::Relaxed);
                panic!("ipt fault injection: injected panic at {site}, item {item}");
            }
            Some(FaultMode::Hang(rate)) if decide(site, item, rate) => {
                INJECTED_HANGS.fetch_add(1, Ordering::Relaxed);
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
            _ => {}
        }
    }

    /// Skew column `j` of group `[j0, j0 + gw)` (over `n` total columns)
    /// to a column **outside** the group at the deterministic rate — the
    /// synthetic Eq. 24/26 off-by-one the disjointness checker must catch.
    ///
    /// The skewed target is drawn from the group's complement, so every
    /// performed skew is an out-of-ownership access by construction (when
    /// the group spans all columns, no skew is possible and `j` is
    /// returned unchanged without counting an injection).
    #[inline]
    pub fn skew_column(site: &'static str, j: usize, j0: usize, gw: usize, n: usize) -> usize {
        if let Some(FaultMode::Skew(rate)) = mode() {
            if gw < n && decide(site, j, rate) {
                INJECTED_SKEWS.fetch_add(1, Ordering::Relaxed);
                // Map into [j0 + gw, j0 + gw + (n - gw)) mod n: exactly the
                // complement of the owning group's columns.
                return (j0 + gw + ((j - j0) % (n - gw))) % n;
            }
        }
        j
    }
}

#[cfg(feature = "fault-inject")]
pub use active::{force, injection_counts, maybe_panic, parse_fault, skew_column, unforce};

/// No-op stub: fault injection is compiled out without the `fault-inject`
/// feature (see the module docs).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn maybe_panic(_site: &'static str, _item: usize) {}

/// No-op stub returning `j` unchanged: fault injection is compiled out
/// without the `fault-inject` feature (see the module docs).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn skew_column(_site: &'static str, j: usize, _j0: usize, _gw: usize, _n: usize) -> usize {
    j
}

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_kinds_and_rejects_garbage() {
        assert_eq!(parse_fault("panic:0.05"), Ok(FaultMode::Panic(0.05)));
        assert_eq!(parse_fault(" skew : 1 "), Ok(FaultMode::Skew(1.0)));
        assert_eq!(parse_fault("panic:0"), Ok(FaultMode::Panic(0.0)));
        assert_eq!(parse_fault("hang:0.1"), Ok(FaultMode::Hang(0.1)));
        // Case-folds like IPT_KERNEL: shell exports often capitalize.
        assert_eq!(parse_fault("PANIC:0.5"), Ok(FaultMode::Panic(0.5)));
        assert_eq!(parse_fault(" Skew :0.25"), Ok(FaultMode::Skew(0.25)));
        assert_eq!(parse_fault(" Hang : 1 "), Ok(FaultMode::Hang(1.0)));
        for bad in [
            "panic",
            "panic:",
            "panic:2",
            "panic:-0.1",
            "panic:NaN",
            "hang:2",
            "hang:",
            "abort:0.5",
            "",
        ] {
            let err = parse_fault(bad).unwrap_err();
            assert!(err.contains("IPT_FAULT"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn hang_mode_round_trips_through_the_forced_encoding() {
        // force/unforce shares one atomic word across all kinds; make
        // sure the new kind survives encode -> decode with its rate.
        force(Some(FaultMode::Hang(0.0)));
        // Rate 0 never fires, so this must return immediately.
        maybe_panic("hang_site", 3);
        unforce();
    }

    #[test]
    fn skew_always_leaves_the_group_and_stays_in_bounds() {
        force(Some(FaultMode::Skew(1.0)));
        for n in [5usize, 8, 13, 64] {
            for w in [1usize, 2, 3, 7] {
                let groups = n.div_ceil(w);
                for g in 0..groups {
                    let j0 = g * w;
                    let gw = w.min(n - j0);
                    for j in j0..j0 + gw {
                        let s = skew_column("test_site", j, j0, gw, n);
                        assert!(s < n, "skew out of bounds: {s} >= {n}");
                        if gw < n {
                            assert!(
                                !(j0..j0 + gw).contains(&s),
                                "skew {j}->{s} stayed inside [{j0}, {})",
                                j0 + gw
                            );
                        } else {
                            assert_eq!(s, j, "full-width group cannot skew");
                        }
                    }
                }
            }
        }
        unforce();
    }

    #[test]
    fn decisions_are_deterministic_and_rate_sensitive() {
        force(Some(FaultMode::Skew(0.5)));
        let (_, before, _) = injection_counts();
        let a: Vec<usize> = (0..200)
            .map(|j| skew_column("det_site", j, 0, 200, 400))
            .collect();
        let b: Vec<usize> = (0..200)
            .map(|j| skew_column("det_site", j, 0, 200, 400))
            .collect();
        assert_eq!(a, b, "same (site, item) must decide identically");
        let skewed = a.iter().zip(0..).filter(|&(&s, j)| s != j).count();
        assert!(
            (40..160).contains(&skewed),
            "rate 0.5 over 200 items: got {skewed}"
        );
        let (_, after, _) = injection_counts();
        assert_eq!(after - before, 2 * skewed as u64, "every skew counted");
        unforce();
    }

    #[test]
    fn forced_off_beats_any_environment() {
        force(None);
        assert_eq!(skew_column("off_site", 3, 0, 4, 8), 3);
        maybe_panic("off_site", 3); // must not panic
        unforce();
    }

    #[test]
    fn injected_panic_carries_site_and_item() {
        force(Some(FaultMode::Panic(1.0)));
        let err = std::panic::catch_unwind(|| maybe_panic("panic_site", 17)).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected panic"), "{msg}");
        assert!(msg.contains("panic_site") && msg.contains("17"), "{msg}");
        unforce();
    }
}
