//! Per-host kernel calibration: measure the crossovers, remember them.
//!
//! [`super::select_auto`] encodes the scalar/block4/block8 crossover
//! points as three constants tuned on one box. The run structure that
//! motivates them (runs average `c/3` columns, contiguous when `b == 1`)
//! is a property of the *shape*, but where blocking starts to pay is a
//! property of the *machine* — vector width, store-forwarding latency,
//! how well the compiler unrolled the strip loop. In the empirical
//! autotuning tradition of ATLAS and FFTW, this module lets the machine
//! measure its own crossovers once and remember them:
//!
//! * [`probe`] runs a short microprobe — every kernel on a ladder of
//!   synthetic [`C2rParams`] shapes spanning the `c`/`b` space (the
//!   `b == 1` memcpy regime and the strided `b > 1` regime, `c` from the
//!   coprime limit up through run lengths long past every static
//!   threshold) — timed with the same monotonic [`std::time::Instant`]
//!   clock the bench harness uses, and records the measured-fastest
//!   kernel per rung as a [`CalibrationProfile`].
//! * The profile persists as a small JSON document (the workspace's
//!   zero-dep [`crate::json`] machinery) at a cache path: the
//!   `IPT_CALIBRATION` environment variable if set (`off`/`none`/`0`
//!   disables persistence), else `target/ipt-calibration.json` when run
//!   inside a cargo tree, else the system temp dir — so repeat processes
//!   skip the probe.
//! * [`loaded`] lazily loads that profile once per process, and
//!   [`super::select`] consults it *between* the `IPT_KERNEL` override
//!   and the static heuristic. A missing file is silent; an unreadable
//!   or corrupt one warns once to stderr and falls back to
//!   [`super::select_auto`] — never a panic, and with no profile the
//!   dispatch behavior is byte-identical to the uncalibrated build.
//!
//! Lookup is piecewise-constant: a shape picks the rung of its `b` class
//! (`b == 1` vs `b > 1`) with the largest `c` not exceeding its own, so
//! on the probe-ladder shapes themselves the calibrated [`super::select`]
//! reproduces the measured winner exactly.
//!
//! The probe itself never runs implicitly — only `ipt-cli calibrate`
//! (or an explicit [`probe`] call) pays the measurement cost, keeping
//! library dispatch allocation- and surprise-free.

use super::{RowShuffleKernel, ShuffleDirection};
use crate::gcd::gcd;
use crate::index::C2rParams;
use crate::json::Json;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Schema tag stamped into every persisted profile.
pub const SCHEMA: &str = "ipt-calibration-v1";

/// Environment variable naming the profile cache path (`off`, `none`,
/// `0` or empty disable persistence and lazy loading entirely).
pub const ENV_PATH: &str = "IPT_CALIBRATION";

/// File name used under the default cache directory.
pub const DEFAULT_FILE: &str = "ipt-calibration.json";

/// A probe measurement must accumulate at least this much wall time
/// before its rate is trusted (the iteration count doubles until it
/// does), mirroring the bench harness's calibrated-batch approach.
pub const MIN_PROBE_NANOS: u64 = 200_000;

/// Hard cap on the doubling iteration count, so a broken (frozen) clock
/// cannot spin the probe forever.
const MAX_PROBE_ITERS: u64 = 1 << 20;

/// Repetitions per (shape, kernel); the best (minimum) rate wins, which
/// rejects one-off scheduling noise.
pub const PROBE_REPS: usize = 3;

/// Target working-set size per rung, in elements (`u64`), chosen to fit
/// comfortably in L1/L2 so the probe measures kernel overhead rather
/// than memory bandwidth — the regime where the kernels actually differ.
const TARGET_ELEMS: usize = 1 << 14;

/// One rung of the probe ladder: a synthetic shape plus the measured
/// per-kernel rates and the winner.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeResult {
    /// Rows of the probed shape.
    pub m: usize,
    /// Columns of the probed shape.
    pub n: usize,
    /// `gcd(m, n)` — the run-length driver.
    pub c: usize,
    /// `n / c` — `1` selects the contiguous-run (memcpy) regime.
    pub b: usize,
    /// Best-of-reps nanoseconds per element, indexed like
    /// [`RowShuffleKernel::ALL`].
    pub nanos_per_elem: [f64; 3],
    /// The measured-fastest kernel on this rung (ties go to the earlier
    /// entry of [`RowShuffleKernel::ALL`], i.e. the simpler kernel).
    pub best: RowShuffleKernel,
}

/// A host's measured kernel crossovers: one [`ProbeResult`] per ladder
/// rung, covering both `b` classes.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationProfile {
    /// The per-rung measurements, in ladder order.
    pub probes: Vec<ProbeResult>,
}

/// The synthetic `(m, n)` probe ladder.
///
/// Two families, each holding total size near `TARGET_ELEMS` (16K
/// elements, L1/L2-resident):
///
/// * **`b == 1`** (contiguous runs): `n = c`, `m` a multiple of `n`,
///   for `c` in `{2, 4, .., 64}` — brackets the static `b == 1 && c >= 4`
///   threshold from both sides.
/// * **`b == 2`** (strided runs): `n = 2c`, `m` an *odd* multiple of `c`
///   (so `gcd(m, n)` stays exactly `c`), for `c` in `{1, 2, .., 128}` —
///   from the coprime one-element-run limit past the static `c >= 64`
///   threshold.
pub fn ladder() -> Vec<(usize, usize)> {
    let mut shapes = Vec::new();
    for c in [2usize, 4, 8, 16, 32, 64] {
        let k = (TARGET_ELEMS / (c * c)).max(2);
        shapes.push((k * c, c));
    }
    for c in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let mut k = (TARGET_ELEMS / (2 * c * c)).max(1);
        if k % 2 == 0 {
            k -= 1; // keep k odd so gcd(k * c, 2 * c) == c
        }
        shapes.push((k * c, 2 * c));
    }
    shapes
}

/// Run the microprobe with the real monotonic clock and default
/// repetitions. Takes a few milliseconds of pure compute; callers that
/// want the result cached should [`CalibrationProfile::save`] it to
/// [`resolve_path`].
pub fn probe() -> CalibrationProfile {
    let start = std::time::Instant::now();
    let mut clock = move || start.elapsed().as_nanos() as u64;
    probe_with(&mut clock, PROBE_REPS)
}

/// Run the microprobe against an injected nanosecond clock — the real
/// probe with `Instant`, deterministic tests with a scripted one.
///
/// Per rung, kernels are measured in [`RowShuffleKernel::ALL`] order;
/// each measurement reads the clock once before and once after its
/// iteration batch, which is the contract scripted clocks rely on.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn probe_with(clock: &mut dyn FnMut() -> u64, reps: usize) -> CalibrationProfile {
    assert!(reps >= 1, "probe needs at least one repetition");
    let mut probes = Vec::new();
    for (m, n) in ladder() {
        let p = C2rParams::new(m, n);
        let mut data: Vec<u64> = (0..(m * n) as u64).collect();
        let mut tmp = vec![0u64; n];
        let mut nanos_per_elem = [0f64; 3];
        for (slot, &kernel) in RowShuffleKernel::ALL.iter().enumerate() {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                best = best.min(measure_once(clock, &mut data, &p, &mut tmp, kernel));
            }
            nanos_per_elem[slot] = best;
        }
        probes.push(ProbeResult {
            m,
            n,
            c: p.c,
            b: p.b,
            nanos_per_elem,
            best: best_kernel(&nanos_per_elem),
        });
    }
    CalibrationProfile { probes }
}

/// One timed measurement: double the iteration count until the batch
/// spans [`MIN_PROBE_NANOS`], then return nanoseconds per element.
fn measure_once(
    clock: &mut dyn FnMut() -> u64,
    data: &mut [u64],
    p: &C2rParams,
    tmp: &mut [u64],
    kernel: RowShuffleKernel,
) -> f64 {
    let elems = (p.m * p.n) as f64;
    let mut iters: u64 = 1;
    loop {
        let t0 = clock();
        for _ in 0..iters {
            super::row_shuffle(
                std::hint::black_box(&mut *data),
                p,
                tmp,
                kernel,
                ShuffleDirection::Inverse,
            );
        }
        let dt = clock().saturating_sub(t0);
        if dt >= MIN_PROBE_NANOS || iters >= MAX_PROBE_ITERS {
            return dt as f64 / (iters as f64 * elems);
        }
        iters *= 2;
    }
}

/// The argmin of a per-kernel rate array; ties prefer the earlier
/// (simpler) kernel.
fn best_kernel(nanos_per_elem: &[f64; 3]) -> RowShuffleKernel {
    let mut best = RowShuffleKernel::ALL[0];
    let mut best_ns = nanos_per_elem[0];
    for (slot, &kernel) in RowShuffleKernel::ALL.iter().enumerate().skip(1) {
        if nanos_per_elem[slot] < best_ns {
            best_ns = nanos_per_elem[slot];
            best = kernel;
        }
    }
    best
}

impl CalibrationProfile {
    /// The calibrated kernel choice for a shape: within the shape's `b`
    /// class (`b == 1` vs `b > 1`), the rung with the largest `c` not
    /// exceeding `p.c` decides; shapes below every rung clamp to the
    /// smallest rung. A profile missing a whole class (possible only for
    /// hand-built profiles — [`CalibrationProfile::from_json`] requires
    /// both) defers to [`super::select_auto`].
    pub fn select(&self, p: &C2rParams) -> RowShuffleKernel {
        let contiguous = p.b == 1;
        let mut best_le: Option<&ProbeResult> = None;
        let mut smallest: Option<&ProbeResult> = None;
        for r in self.probes.iter().filter(|r| (r.b == 1) == contiguous) {
            if smallest.is_none_or(|s| r.c < s.c) {
                smallest = Some(r);
            }
            if r.c <= p.c && best_le.is_none_or(|b| r.c > b.c) {
                best_le = Some(r);
            }
        }
        match best_le.or(smallest) {
            Some(r) => r.best,
            None => super::select_auto(p),
        }
    }

    /// Serialize to the persisted document shape (schema
    /// [`SCHEMA`]), insertion-ordered for byte-stable output.
    pub fn to_json(&self) -> Json {
        let probes = self
            .probes
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("m", Json::Num(r.m as f64)),
                    ("n", Json::Num(r.n as f64)),
                    ("c", Json::Num(r.c as f64)),
                    ("b", Json::Num(r.b as f64)),
                    ("scalar_ns", Json::Num(r.nanos_per_elem[0])),
                    ("block4_ns", Json::Num(r.nanos_per_elem[1])),
                    ("block8_ns", Json::Num(r.nanos_per_elem[2])),
                    ("best", Json::Str(r.best.name().to_string())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("probes", Json::Arr(probes)),
        ])
    }

    /// Deserialize and *validate* a persisted document: the schema tag,
    /// every per-rung field, `c`/`b` consistency with `m`/`n`, and that
    /// both `b` classes are covered, so a validated profile can always
    /// answer [`CalibrationProfile::select`] from measurements.
    pub fn from_json(doc: &Json) -> Result<CalibrationProfile, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == SCHEMA => {}
            other => return Err(format!("schema is {other:?}, expected {SCHEMA:?}")),
        }
        let raw = doc
            .get("probes")
            .and_then(Json::as_arr)
            .ok_or("missing probes array")?;
        if raw.is_empty() {
            return Err("empty probes array".to_string());
        }
        let mut probes = Vec::with_capacity(raw.len());
        for (i, entry) in raw.iter().enumerate() {
            probes.push(probe_from_json(entry).map_err(|e| format!("probes[{i}]: {e}"))?);
        }
        let has = |contiguous: bool| probes.iter().any(|r| (r.b == 1) == contiguous);
        if !has(true) || !has(false) {
            return Err("probes must cover both the b == 1 and b > 1 classes".to_string());
        }
        Ok(CalibrationProfile { probes })
    }

    /// Parse a profile from its rendered text.
    pub fn parse(text: &str) -> Result<CalibrationProfile, String> {
        CalibrationProfile::from_json(&Json::parse(text)?)
    }

    /// Render the persisted form (see [`CalibrationProfile::to_json`]).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Write the profile to `path`, refusing non-finite rates.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let text = self
            .to_json()
            .render_checked()
            .map_err(|e| format!("profile has no JSON encoding: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))
    }

    /// Read and validate a profile from `path`.
    pub fn load(path: &Path) -> Result<CalibrationProfile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        CalibrationProfile::parse(&text)
    }

    /// A short content fingerprint (FNV-1a over the rendered form) used
    /// to stamp bench reports, so history can tell which profile decided
    /// dispatch for a run.
    pub fn hash(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.render().bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

/// Parse one ladder rung, recomputing `c` and `b` from `m`/`n` and
/// rejecting entries whose stored values disagree (a cheap corruption
/// tripwire for hand-edited files).
fn probe_from_json(doc: &Json) -> Result<ProbeResult, String> {
    let field = |key: &str| {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("missing or non-integer {key:?}"))
    };
    let m = field("m")? as usize;
    let n = field("n")? as usize;
    if m == 0 || n == 0 {
        return Err("zero dimension".to_string());
    }
    let c = gcd(m as u64, n as u64) as usize;
    let b = n / c;
    if field("c")? as usize != c || field("b")? as usize != b {
        return Err(format!("stored c/b disagree with m = {m}, n = {n}"));
    }
    let mut nanos_per_elem = [0f64; 3];
    for (slot, kernel) in RowShuffleKernel::ALL.iter().enumerate() {
        let key = format!("{}_ns", kernel.name());
        let x = doc
            .get(&key)
            .and_then(Json::as_f64)
            .ok_or(format!("missing or non-numeric {key:?}"))?;
        if !x.is_finite() || x < 0.0 {
            return Err(format!("{key:?} is not a finite non-negative rate"));
        }
        nanos_per_elem[slot] = x;
    }
    let best = match doc.get("best").and_then(Json::as_str) {
        Some(s) => match RowShuffleKernel::parse(s) {
            Ok(Some(kernel)) => kernel,
            _ => return Err(format!("best is {s:?}, expected a concrete kernel name")),
        },
        None => return Err("missing best".to_string()),
    };
    Ok(ProbeResult {
        m,
        n,
        c,
        b,
        nanos_per_elem,
        best,
    })
}

/// The profile cache path: `IPT_CALIBRATION` if set (`None` when it
/// spells `off`/`none`/`0`/empty), else `target/ipt-calibration.json`
/// when a `target/` directory exists under the working directory (the
/// cargo layout the ISSUE calls the "target/history dir"), else the
/// system temp dir.
pub fn resolve_path() -> Option<PathBuf> {
    match std::env::var(ENV_PATH) {
        Ok(raw) => {
            let v = raw.trim();
            match v {
                "" | "off" | "none" | "0" => None,
                _ => Some(PathBuf::from(v)),
            }
        }
        Err(_) => {
            let target = Path::new("target");
            if target.is_dir() {
                Some(target.join(DEFAULT_FILE))
            } else {
                Some(std::env::temp_dir().join(DEFAULT_FILE))
            }
        }
    }
}

/// The lazily-loaded process-wide profile consulted by
/// [`super::select`]: read once from [`resolve_path`] on first use.
/// A missing file (or disabled persistence) is silently `None`; an
/// unreadable or corrupt file warns once to stderr and is `None` —
/// dispatch then falls back to [`super::select_auto`], never panics.
pub fn loaded() -> Option<&'static CalibrationProfile> {
    static LOADED: OnceLock<Option<CalibrationProfile>> = OnceLock::new();
    LOADED
        .get_or_init(|| {
            let path = resolve_path()?;
            match std::fs::read_to_string(&path) {
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
                Err(e) => {
                    eprintln!(
                        "ipt: ignoring unreadable calibration profile {}: {e} \
                         (using the static heuristic)",
                        path.display()
                    );
                    None
                }
                Ok(text) => match CalibrationProfile::parse(&text) {
                    Ok(profile) => Some(profile),
                    Err(e) => {
                        eprintln!(
                            "ipt: ignoring corrupt calibration profile {}: {e} \
                             (using the static heuristic)",
                            path.display()
                        );
                        None
                    }
                },
            }
        })
        .as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted clock: measurements read the clock twice (before and
    /// after the batch), so pair `2k`/`2k + 1` yields the `k`-th delta.
    /// Deltas at or above [`MIN_PROBE_NANOS`] keep the batch at one
    /// iteration, making the probe order fully deterministic.
    fn scripted_clock(mut delta_for_pair: impl FnMut(usize) -> u64) -> impl FnMut() -> u64 {
        let mut calls = 0usize;
        move || {
            let pair = calls / 2;
            let value = if calls % 2 == 0 {
                0
            } else {
                delta_for_pair(pair)
            };
            calls += 1;
            value
        }
    }

    #[test]
    fn ladder_spans_both_b_classes_with_exact_gcds() {
        let shapes = ladder();
        let mut contiguous = 0;
        let mut strided = 0;
        for (m, n) in shapes {
            let p = C2rParams::new(m, n);
            if p.b == 1 {
                contiguous += 1;
            } else {
                assert_eq!(p.b, 2, "{m}x{n}");
                strided += 1;
            }
        }
        assert!(contiguous >= 4, "need rungs across the b == 1 thresholds");
        assert!(strided >= 6, "need rungs across the b > 1 thresholds");
        // The strided family must include the coprime limit.
        assert!(ladder().iter().any(|&(m, n)| gcd(m as u64, n as u64) == 1));
    }

    #[test]
    fn probe_with_scripted_clock_is_deterministic() {
        // Every pair: scalar slowest, block8 fastest.
        let deltas = [3 * MIN_PROBE_NANOS, 2 * MIN_PROBE_NANOS, MIN_PROBE_NANOS];
        let mut clock_a = scripted_clock(move |pair| deltas[pair % 3]);
        let mut clock_b = scripted_clock(move |pair| deltas[pair % 3]);
        let a = probe_with(&mut clock_a, 1);
        let b = probe_with(&mut clock_b, 1);
        assert_eq!(a, b);
        assert_eq!(a.probes.len(), ladder().len());
        for r in &a.probes {
            assert_eq!(r.best, RowShuffleKernel::Block8, "{}x{}", r.m, r.n);
            assert!(r.nanos_per_elem[0] > r.nanos_per_elem[2]);
        }
    }

    #[test]
    fn select_matches_the_measured_fastest_on_every_ladder_shape() {
        // Rotate the winner across rungs so the lookup is actually
        // consulted per rung rather than returning one global answer.
        let mut clock = scripted_clock(|pair| {
            let (rung, kernel_slot) = (pair / 3, pair % 3);
            if kernel_slot == rung % 3 {
                MIN_PROBE_NANOS
            } else {
                2 * MIN_PROBE_NANOS + kernel_slot as u64
            }
        });
        let profile = probe_with(&mut clock, 1);
        let winners: std::collections::HashSet<_> =
            profile.probes.iter().map(|r| r.best.name()).collect();
        assert_eq!(winners.len(), 3, "every kernel should win somewhere");
        for r in &profile.probes {
            let p = C2rParams::new(r.m, r.n);
            assert_eq!(profile.select(&p), r.best, "{}x{}", r.m, r.n);
        }
    }

    #[test]
    fn select_clamps_to_the_nearest_rung_per_class() {
        let deltas = [3 * MIN_PROBE_NANOS, 2 * MIN_PROBE_NANOS, MIN_PROBE_NANOS];
        let mut clock = scripted_clock(move |pair| deltas[pair % 3]);
        let profile = probe_with(&mut clock, 1);
        // 3x3 (b == 1, c == 3) sits below the smallest b == 1 rung
        // (c == 2 exists, so it resolves to the c == 2 rung's winner);
        // 5x7 (coprime, b == 7) uses the strided class.
        assert_eq!(
            profile.select(&C2rParams::new(3, 3)),
            RowShuffleKernel::Block8
        );
        assert_eq!(
            profile.select(&C2rParams::new(5, 7)),
            RowShuffleKernel::Block8
        );
        // Above every rung: the largest-c rung decides.
        assert_eq!(
            profile.select(&C2rParams::new(4096, 4096)),
            RowShuffleKernel::Block8
        );
    }

    #[test]
    fn profile_round_trips_through_the_text_format() {
        let deltas = [MIN_PROBE_NANOS, 5 * MIN_PROBE_NANOS, 2 * MIN_PROBE_NANOS];
        let mut clock = scripted_clock(move |pair| deltas[pair % 3]);
        let profile = probe_with(&mut clock, 2);
        let text = profile.render();
        let back = CalibrationProfile::parse(&text).unwrap();
        assert_eq!(back, profile);
        // Byte-stable: render -> parse -> render is the identity.
        assert_eq!(back.render(), text);
        assert_eq!(back.hash(), profile.hash());
    }

    #[test]
    fn hash_distinguishes_different_profiles() {
        let mut fast_scalar = scripted_clock(|pair| match pair % 3 {
            0 => MIN_PROBE_NANOS,
            _ => 2 * MIN_PROBE_NANOS,
        });
        let mut fast_block8 = scripted_clock(|pair| match pair % 3 {
            2 => MIN_PROBE_NANOS,
            _ => 2 * MIN_PROBE_NANOS,
        });
        let a = probe_with(&mut fast_scalar, 1);
        let b = probe_with(&mut fast_block8, 1);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn corrupt_documents_are_rejected_not_panicked_on() {
        let deltas = [MIN_PROBE_NANOS; 3];
        let mut clock = scripted_clock(move |pair| deltas[pair % 3]);
        let good = probe_with(&mut clock, 1).render();

        // Truncation, wrong schema, missing fields, inconsistent c/b,
        // bogus kernel names, a missing b class: all errors, no panics.
        let cases: Vec<String> = vec![
            good[..good.len() / 2].to_string(),
            good.replace(SCHEMA, "ipt-calibration-v0"),
            good.replace("\"best\"", "\"beast\""),
            good.replace("\"scalar_ns\"", "\"scalar_xs\""),
            good.replace("\"c\": 2", "\"c\": 3"),
            good.replace("\"best\": \"scalar\"", "\"best\": \"avx512\""),
            good.replace("\"best\": \"scalar\"", "\"best\": \"auto\""),
            "{\"schema\": \"ipt-calibration-v1\", \"probes\": []}\n".to_string(),
            "not json at all".to_string(),
        ];
        for bad in cases {
            assert!(
                CalibrationProfile::parse(&bad).is_err(),
                "should reject: {bad:.60}"
            );
        }

        // A single-class profile parses field-wise but fails the class
        // coverage check.
        let profile = CalibrationProfile::parse(&good).unwrap();
        let one_class = CalibrationProfile {
            probes: profile
                .probes
                .iter()
                .filter(|r| r.b == 1)
                .cloned()
                .collect(),
        };
        assert!(CalibrationProfile::parse(&one_class.render()).is_err());
    }

    #[test]
    fn single_class_profile_defers_to_the_static_heuristic() {
        // Hand-built (not loadable) profile with only b == 1 rungs: a
        // strided shape must fall back to select_auto, not panic.
        let deltas = [MIN_PROBE_NANOS; 3];
        let mut clock = scripted_clock(move |pair| deltas[pair % 3]);
        let full = probe_with(&mut clock, 1);
        let one_class = CalibrationProfile {
            probes: full.probes.into_iter().filter(|r| r.b == 1).collect(),
        };
        let coprime = C2rParams::new(101, 103);
        assert_eq!(
            one_class.select(&coprime),
            super::super::select_auto(&coprime)
        );
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let deltas = [MIN_PROBE_NANOS, 2 * MIN_PROBE_NANOS, 3 * MIN_PROBE_NANOS];
        let mut clock = scripted_clock(move |pair| deltas[pair % 3]);
        let profile = probe_with(&mut clock, 1);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ipt-calibrate-rt-{}.json", std::process::id()));
        profile.save(&path).unwrap();
        let back = CalibrationProfile::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, profile);
    }

    #[test]
    fn real_probe_produces_a_loadable_self_consistent_profile() {
        // The genuine Instant-clocked probe: rates must be finite and
        // positive, the document must validate, and select must agree
        // with the recorded winner on each rung (the acceptance
        // criterion, on real measurements).
        let profile = probe();
        let back = CalibrationProfile::parse(&profile.render()).unwrap();
        assert_eq!(back, profile);
        for r in &profile.probes {
            for &ns in &r.nanos_per_elem {
                assert!(ns.is_finite() && ns > 0.0, "{}x{}", r.m, r.n);
            }
            assert_eq!(profile.select(&C2rParams::new(r.m, r.n)), r.best);
        }
    }
}
