//! Row-shuffle kernel family with runtime dispatch (§5.1, Eqs. 24/31).
//!
//! The row shuffle is the decomposition's hottest pass: every row of the
//! matrix is permuted by `d'_i` (Eq. 24) or its inverse (Eq. 31). The
//! scalar implementation walks an incremental recurrence — one
//! data-dependent wrap test per element — which caps it well below memory
//! bandwidth. This module exploits the *run structure* of the gather
//! index instead:
//!
//! For fixed row `i`, the gather sequence `j -> d'^-1_i(j)` is **piecewise
//! arithmetic with stride `b = n/c`**. Writing `thr = max(0, i + c - m)`,
//! the stride only breaks at columns `j` whose residue `j mod c` lies in
//! the boundary set `{0, i mod c, thr}` — at most three residues, so runs
//! average `c/3` columns and reach `c` columns when the residues collide
//! (e.g. `i ≡ 0 (mod c)`). Inside a run the expensive Eq. 31 evaluation
//! is needed **once**; the rest of the run is the branch-free affine walk
//! `base, base + b, base + 2b, ...`, which the blocked kernels emit in
//! fixed `W`-lane strips that LLVM unrolls and autovectorizes on stable
//! Rust (no `portable_simd`, no unsafe). When `b == 1` — every square
//! matrix, and any shape where `m` is a multiple of `n` — the runs are
//! literal `memcpy` segments.
//!
//! Why this is still the paper's algorithm: the runs partition `[0, n)`,
//! each element is read from the same `d'^-1_i(j)` as before, and the
//! whole row is staged through the same `n`-element scratch row, so the
//! `O(max(m, n))` auxiliary bound of Theorem 6 is untouched — the kernels
//! change the *order of index evaluation*, not the data movement.
//!
//! [`select`] picks a kernel per shape at runtime through three tiers:
//! the `IPT_KERNEL` environment variable (`auto` / `scalar` / `block4` /
//! `block8`) overrides everything for ablation studies; otherwise a
//! per-host [`calibrate::CalibrationProfile`] — measured crossovers,
//! persisted and lazily loaded — decides; otherwise the static
//! [`select_auto`] heuristic (runs shorter than a strip are not worth
//! the per-run setup) is the fallback. [`select_with_tier`] additionally
//! reports which tier decided, for observability.
//!
//! ```
//! use ipt_core::index::C2rParams;
//! use ipt_core::kernels::{self, RowShuffleKernel, ShuffleDirection};
//!
//! let (m, n) = (6usize, 4usize);
//! let p = C2rParams::new(m, n);
//! let mut a: Vec<u32> = (0..(m * n) as u32).collect();
//! let mut b = a.clone();
//! let mut tmp = vec![0u32; n];
//! // Every kernel computes the same permutation:
//! kernels::row_shuffle(&mut a, &p, &mut tmp, RowShuffleKernel::Scalar,
//!                      ShuffleDirection::Inverse);
//! kernels::row_shuffle(&mut b, &p, &mut tmp, RowShuffleKernel::Block8,
//!                      ShuffleDirection::Inverse);
//! assert_eq!(a, b);
//! ```

pub mod calibrate;
pub mod faulty;

mod blocked;
mod scalar;

use crate::index::C2rParams;
use std::sync::OnceLock;

/// Which way the row shuffle permutes, named after the paper's `d'_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShuffleDirection {
    /// Gather with `d'^-1_i` (Eq. 31): `row[j] = old[d'^-1_i(j)]` — step 2
    /// of C2R. Equals a scatter with `d'_i`.
    Inverse,
    /// Gather with `d'_i` directly (Eq. 24 / §4.3): `row[j] = old[d'_i(j)]`
    /// — step 3 of R2C. Equals a scatter with `d'^-1_i`.
    Forward,
}

/// One member of the row-shuffle kernel family.
///
/// All kernels compute the identical permutation; they differ only in how
/// the Eq. 31 index stream is generated (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowShuffleKernel {
    /// The incremental-recurrence baseline: constant-stride index updates
    /// with wrap tests, one element at a time (§4.4 strength reduction
    /// taken to its scalar limit).
    Scalar,
    /// Run-blocked kernel emitting 4-lane strips.
    Block4,
    /// Run-blocked kernel emitting 8-lane strips.
    Block8,
}

impl RowShuffleKernel {
    /// Every kernel, in ablation order.
    pub const ALL: [RowShuffleKernel; 3] = [
        RowShuffleKernel::Scalar,
        RowShuffleKernel::Block4,
        RowShuffleKernel::Block8,
    ];

    /// Stable identifier used by `IPT_KERNEL`, the bench suite and the
    /// per-kernel hit counters.
    pub fn name(self) -> &'static str {
        match self {
            RowShuffleKernel::Scalar => "scalar",
            RowShuffleKernel::Block4 => "block4",
            RowShuffleKernel::Block8 => "block8",
        }
    }

    /// Parse an `IPT_KERNEL` value, ignoring surrounding whitespace and
    /// ASCII case (shell-exported overrides arrive as `"BLOCK8"` or
    /// `" block4 "` often enough). `Ok(None)` means `auto` (defer to the
    /// [`select`] resolution); unknown names are an error carrying the
    /// offending string.
    pub fn parse(s: &str) -> Result<Option<RowShuffleKernel>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Ok(None),
            "scalar" => Ok(Some(RowShuffleKernel::Scalar)),
            "block4" => Ok(Some(RowShuffleKernel::Block4)),
            "block8" => Ok(Some(RowShuffleKernel::Block8)),
            _ => Err(format!(
                "unknown IPT_KERNEL {s:?} (expected auto, scalar, block4 or block8)"
            )),
        }
    }

    /// Permute one row: `dst` receives the shuffle of `src`, where `src`
    /// is a copy of row `i`'s previous contents and both slices hold
    /// exactly `p.n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != p.n`, `dst.len() != p.n` or `i >= p.m`.
    pub fn apply_row<T: Copy>(
        self,
        p: &C2rParams,
        i: usize,
        src: &[T],
        dst: &mut [T],
        dir: ShuffleDirection,
    ) {
        assert_eq!(src.len(), p.n, "src must hold one n-element row");
        assert_eq!(dst.len(), p.n, "dst must hold one n-element row");
        assert!(i < p.m, "row index {i} out of range for m = {}", p.m);
        match self {
            RowShuffleKernel::Scalar => scalar::apply_row(p, i, src, dst, dir),
            RowShuffleKernel::Block4 => blocked::apply_row::<4, T>(p, i, src, dst, dir),
            RowShuffleKernel::Block8 => blocked::apply_row::<8, T>(p, i, src, dst, dir),
        }
    }
}

/// The `IPT_KERNEL` override, parsed once per process through the shared
/// warn-once knob contract ([`crate::env::parse_once`]). The inner
/// `Option` is the parse result (`auto` defers), the outer one is the
/// unset/garbage fallback — both resolve to "no override".
fn env_override() -> Option<RowShuffleKernel> {
    static OVERRIDE: OnceLock<Option<Option<RowShuffleKernel>>> = OnceLock::new();
    crate::env::parse_once(&OVERRIDE, "IPT_KERNEL", RowShuffleKernel::parse).flatten()
}

/// Pick the fastest kernel for this shape (the heuristic alone, ignoring
/// `IPT_KERNEL`) — exposed for tests and the dispatch ablation.
///
/// The run structure makes the trade-off explicit: runs average `c/3`
/// columns, so blocking pays once runs comfortably cover a strip, and the
/// wider strip needs the longer run. Coprime shapes (`c == 1`) degenerate
/// to one-element runs — one Eq. 31 evaluation per element — where the
/// scalar recurrence is unbeatable. When `b == 1`, runs are contiguous
/// copies and blocking wins as soon as any useful run length exists.
pub fn select_auto(p: &C2rParams) -> RowShuffleKernel {
    if (p.b == 1 && p.c >= 4) || p.c >= 64 {
        RowShuffleKernel::Block8
    } else if p.c >= 16 {
        RowShuffleKernel::Block4
    } else {
        RowShuffleKernel::Scalar
    }
}

/// Which resolution tier decided a kernel choice (see [`select_with_tier`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionTier {
    /// The `IPT_KERNEL` environment variable forced the kernel.
    Override,
    /// A loaded [`calibrate::CalibrationProfile`] decided from
    /// measurements.
    Calibrated,
    /// The static [`select_auto`] heuristic decided.
    Static,
}

impl DecisionTier {
    /// Stable identifier used by the pool's decision counters and the
    /// bench report stamps.
    pub fn name(self) -> &'static str {
        match self {
            DecisionTier::Override => "override",
            DecisionTier::Calibrated => "calibrated",
            DecisionTier::Static => "static",
        }
    }
}

/// Pick the kernel to run for this shape and report which tier decided:
///
/// 1. **override** — the `IPT_KERNEL` environment variable forces a
///    specific member (`scalar` / `block4` / `block8`; `auto` and unset
///    defer — unknown values warn once and defer too);
/// 2. **calibrated** — a persisted per-host profile
///    ([`calibrate::loaded`], cache path `IPT_CALIBRATION`) answers from
///    measured crossovers;
/// 3. **static** — the built-in [`select_auto`] heuristic.
///
/// With no profile on disk (or a corrupt one, which warns once) tier 3
/// makes this byte-identical to the uncalibrated dispatch.
pub fn select_with_tier(p: &C2rParams) -> (RowShuffleKernel, DecisionTier) {
    if let Some(kernel) = env_override() {
        return (kernel, DecisionTier::Override);
    }
    if let Some(profile) = calibrate::loaded() {
        return (profile.select(p), DecisionTier::Calibrated);
    }
    (select_auto(p), DecisionTier::Static)
}

/// [`select_with_tier`] without the provenance — the call every dispatch
/// site uses.
pub fn select(p: &C2rParams) -> RowShuffleKernel {
    select_with_tier(p).0
}

/// The tier that will decide dispatch for *any* shape in this process:
/// [`DecisionTier::Override`] when `IPT_KERNEL` forces a kernel,
/// [`DecisionTier::Calibrated`] when a profile loaded, else
/// [`DecisionTier::Static`]. Benchmarks stamp this into their reports.
pub fn active_tier() -> DecisionTier {
    if env_override().is_some() {
        DecisionTier::Override
    } else if calibrate::loaded().is_some() {
        DecisionTier::Calibrated
    } else {
        DecisionTier::Static
    }
}

/// Shuffle every row of an `m x n` row-major buffer with the given kernel:
/// the serial driver behind [`crate::c2r()`] / [`crate::r2c()`] step 2 and the
/// bench suite. `tmp` stages each row and needs at least `n` elements.
///
/// # Panics
///
/// Panics if `data.len() != p.m * p.n` or `tmp.len() < p.n`.
pub fn row_shuffle<T: Copy>(
    data: &mut [T],
    p: &C2rParams,
    tmp: &mut [T],
    kernel: RowShuffleKernel,
    dir: ShuffleDirection,
) {
    let (m, n) = (p.m, p.n);
    assert_eq!(data.len(), m * n, "buffer length must be m * n");
    assert!(tmp.len() >= n, "tmp must hold at least n elements");
    let tmp = &mut tmp[..n];
    for (i, row) in data.chunks_exact_mut(n).enumerate() {
        tmp.copy_from_slice(row);
        kernel.apply_row(p, i, tmp, row, dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::fill_pattern;
    use crate::permute;

    /// Every (m, n) with both dimensions <= 32, plus shapes chosen to
    /// stress the run structure: b == 1 (contiguous runs), coprime
    /// (one-element runs), huge gcd, thr != 0 rows, prime dimensions.
    fn shapes() -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        for m in 1..=32 {
            for n in 1..=32 {
                v.push((m, n));
            }
        }
        v.extend_from_slice(&[
            (64, 64),   // square: b == 1, runs are memcpy
            (128, 64),  // m multiple of n: b == 1
            (64, 128),  // n multiple of m: c == m
            (96, 72),   // c == 24: Block4 territory
            (192, 128), // c == 64: Block8 territory
            (97, 64),   // coprime, power-of-two n
            (101, 103), // coprime primes
            (48, 36),   // c == 12
            (100, 250), // c == 50
            (250, 100), // c == 50, m > n
            (33, 1023), // c == 33, long rows
            (1023, 33), // c == 33, many short rows
        ]);
        v
    }

    #[test]
    fn all_kernels_match_scalar_reference_inverse() {
        // The reference is permute::row_shuffle_gather — the direct Eq. 31
        // transcription — so this also pins Scalar itself.
        for (m, n) in shapes() {
            let p = C2rParams::new(m, n);
            let mut reference = vec![0u64; m * n];
            fill_pattern(&mut reference);
            let orig = reference.clone();
            let mut tmp = vec![0u64; n];
            permute::row_shuffle_gather(&mut reference, &p, &mut tmp);
            for kernel in RowShuffleKernel::ALL {
                let mut a = orig.clone();
                row_shuffle(&mut a, &p, &mut tmp, kernel, ShuffleDirection::Inverse);
                assert_eq!(a, reference, "{m}x{n} {}", kernel.name());
            }
        }
    }

    #[test]
    fn all_kernels_match_scalar_reference_forward() {
        for (m, n) in shapes() {
            let p = C2rParams::new(m, n);
            let mut reference = vec![0u32; m * n];
            fill_pattern(&mut reference);
            let orig = reference.clone();
            let mut tmp = vec![0u32; n];
            permute::row_shuffle_gather_forward(&mut reference, &p, &mut tmp);
            for kernel in RowShuffleKernel::ALL {
                let mut a = orig.clone();
                row_shuffle(&mut a, &p, &mut tmp, kernel, ShuffleDirection::Forward);
                assert_eq!(a, reference, "{m}x{n} {}", kernel.name());
            }
        }
    }

    #[test]
    fn forward_inverts_inverse_for_every_kernel() {
        for (m, n) in [(24usize, 36usize), (36, 24), (17, 29), (64, 64)] {
            let p = C2rParams::new(m, n);
            for kernel in RowShuffleKernel::ALL {
                let mut a = vec![0u64; m * n];
                fill_pattern(&mut a);
                let orig = a.clone();
                let mut tmp = vec![0u64; n];
                row_shuffle(&mut a, &p, &mut tmp, kernel, ShuffleDirection::Inverse);
                row_shuffle(&mut a, &p, &mut tmp, kernel, ShuffleDirection::Forward);
                assert_eq!(a, orig, "{m}x{n} {}", kernel.name());
            }
        }
    }

    #[test]
    fn kernels_may_be_mixed_across_directions() {
        // Dispatch picks per call; a Block8 inverse must be undone by a
        // Scalar forward and vice versa.
        let (m, n) = (40usize, 56usize); // c == 8
        let p = C2rParams::new(m, n);
        let mut a = vec![0u16; m * n];
        fill_pattern(&mut a);
        let orig = a.clone();
        let mut tmp = vec![0u16; n];
        row_shuffle(
            &mut a,
            &p,
            &mut tmp,
            RowShuffleKernel::Block8,
            ShuffleDirection::Inverse,
        );
        row_shuffle(
            &mut a,
            &p,
            &mut tmp,
            RowShuffleKernel::Scalar,
            ShuffleDirection::Forward,
        );
        assert_eq!(a, orig);
    }

    #[test]
    fn apply_row_matches_d_inv_directly() {
        // Row-level pin against the index function itself, independent of
        // the permute reference.
        let (m, n) = (30usize, 42usize);
        let p = C2rParams::new(m, n);
        for i in [0usize, 1, 5, 29] {
            let src: Vec<u32> = (0..n as u32).collect();
            let want_inv: Vec<u32> = (0..n).map(|j| src[p.d_inv(i, j)]).collect();
            let want_fwd: Vec<u32> = (0..n).map(|j| src[p.d(i, j)]).collect();
            for kernel in RowShuffleKernel::ALL {
                let mut dst = vec![0u32; n];
                kernel.apply_row(&p, i, &src, &mut dst, ShuffleDirection::Inverse);
                assert_eq!(dst, want_inv, "inverse row {i} {}", kernel.name());
                kernel.apply_row(&p, i, &src, &mut dst, ShuffleDirection::Forward);
                assert_eq!(dst, want_fwd, "forward row {i} {}", kernel.name());
            }
        }
    }

    #[test]
    fn select_auto_prefers_blocking_only_with_long_runs() {
        // Coprime: one-element runs, scalar must win.
        assert_eq!(
            select_auto(&C2rParams::new(101, 103)),
            RowShuffleKernel::Scalar
        );
        // Square: b == 1, runs are memcpy.
        assert_eq!(
            select_auto(&C2rParams::new(1024, 1024)),
            RowShuffleKernel::Block8
        );
        // m multiple of n: b == 1 again.
        assert_eq!(
            select_auto(&C2rParams::new(2048, 1024)),
            RowShuffleKernel::Block8
        );
        // Large gcd with b > 1.
        assert_eq!(
            select_auto(&C2rParams::new(1024, 2048)),
            RowShuffleKernel::Block8
        );
        // Mid-size gcd.
        assert_eq!(
            select_auto(&C2rParams::new(48, 36)),
            RowShuffleKernel::Scalar
        );
        assert_eq!(
            select_auto(&C2rParams::new(96, 80)),
            RowShuffleKernel::Block4
        );
    }

    #[test]
    fn parse_accepts_every_kernel_name_and_auto() {
        for kernel in RowShuffleKernel::ALL {
            assert_eq!(RowShuffleKernel::parse(kernel.name()), Ok(Some(kernel)));
        }
        assert_eq!(RowShuffleKernel::parse("auto"), Ok(None));
        assert_eq!(RowShuffleKernel::parse(""), Ok(None));
        assert_eq!(
            RowShuffleKernel::parse(" block8 "),
            Ok(Some(RowShuffleKernel::Block8))
        );
        assert!(RowShuffleKernel::parse("avx512").is_err());
    }

    #[test]
    fn parse_folds_case_like_shell_exports_do() {
        assert_eq!(
            RowShuffleKernel::parse("BLOCK8"),
            Ok(Some(RowShuffleKernel::Block8))
        );
        assert_eq!(
            RowShuffleKernel::parse(" Block4 "),
            Ok(Some(RowShuffleKernel::Block4))
        );
        assert_eq!(
            RowShuffleKernel::parse("SCALAR"),
            Ok(Some(RowShuffleKernel::Scalar))
        );
        assert_eq!(RowShuffleKernel::parse("AUTO"), Ok(None));
        // The error still carries the raw (untrimmed, unfolded) value.
        let err = RowShuffleKernel::parse(" AVX512 ").unwrap_err();
        assert!(err.contains(" AVX512 "), "{err}");
    }

    #[test]
    fn decision_tier_names_are_stable() {
        assert_eq!(DecisionTier::Override.name(), "override");
        assert_eq!(DecisionTier::Calibrated.name(), "calibrated");
        assert_eq!(DecisionTier::Static.name(), "static");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_row_rejects_bad_row_index() {
        let p = C2rParams::new(4, 6);
        let src = vec![0u8; 6];
        let mut dst = vec![0u8; 6];
        RowShuffleKernel::Scalar.apply_row(&p, 4, &src, &mut dst, ShuffleDirection::Inverse);
    }
}
