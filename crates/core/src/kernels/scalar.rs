//! The scalar row-shuffle kernel: incremental index recurrence.
//!
//! `d'_i(j) = ((i + floor(j/b)) mod m + j*m) mod n` advances by a constant
//! `+(m mod n) (mod n)` per column, plus `+1 (mod m)` to the rotation term
//! every `b` columns — successive indices need no division (nor even the
//! §4.4 multiply-shift) in the inner loop. This is the proven baseline the
//! blocked kernels are benchmarked against; its limit is the serial
//! dependency through the recurrence state and the per-element wrap tests.

use super::ShuffleDirection;
use crate::index::C2rParams;

/// Permute one row with the incremental recurrence. `Inverse` scatters
/// with `d'_i` (equivalent to gathering with `d'^-1_i`, Eq. 31);
/// `Forward` gathers with `d'_i` directly (§4.3).
pub(super) fn apply_row<T: Copy>(
    p: &C2rParams,
    i: usize,
    src: &[T],
    dst: &mut [T],
    dir: ShuffleDirection,
) {
    let (m, n, b) = (p.m, p.n, p.b);
    let m_red = m % n; // per-column stride of `base`, reduced mod n
    let scatter = dir == ShuffleDirection::Inverse;
    // State: rot = (i + j/b) mod m; rot_red = rot mod n (kept separately
    // so the sum stays < 2n even when m > n); base = (j*m) mod n.
    let mut rot = i % m;
    let mut rot_red = rot % n;
    let mut base = 0usize;
    let mut until_bump = b;
    for (j, &v) in src.iter().enumerate() {
        let mut d = rot_red + base;
        if d >= n {
            d -= n;
        }
        if scatter {
            dst[d] = v;
        } else {
            dst[j] = src[d];
        }
        base += m_red;
        if base >= n {
            base -= n;
        }
        until_bump -= 1;
        if until_bump == 0 {
            until_bump = b;
            rot += 1;
            rot_red += 1;
            if rot == m {
                rot = 0;
                rot_red = 0;
            } else if rot_red == n {
                rot_red = 0;
            }
        }
    }
}
