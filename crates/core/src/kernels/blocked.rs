//! The run-blocked row-shuffle kernels: `W`-lane strips over arithmetic
//! runs of the Eq. 31 gather index.
//!
//! For fixed row `i`, write `thr = max(0, i + c - m)`. The gather index
//! `d'^-1_i(j)` satisfies `d'^-1_i(j) = d'^-1_i(j - 1) + b` except at
//! columns whose residue `j mod c` lies in `{0, i mod c, thr}` — the three
//! places where Eq. 31's quotient `floor(f/c)` wraps mod `b` or its guard
//! term flips. (The property-test suite pins this exhaustively; the
//! module-level docs in [`super`] give the intuition.) So the row splits
//! into runs: one strength-reduced Eq. 31 evaluation yields `base`, after
//! which the whole run is the affine sequence `base + k*b`, `k = 0..len`,
//! every term of which is in `[0, n)` because the run stops before the
//! next boundary.
//!
//! The inner loop copies a run in `W`-element strips with no data
//! dependence between iterations and no arithmetic beyond the affine
//! index, which LLVM unrolls and autovectorizes; `b == 1` runs skip even
//! that and become `copy_from_slice` (memcpy).

use super::ShuffleDirection;
use crate::index::C2rParams;

/// Smallest `k >= 1` with `(from + k) mod c == to`, for residues
/// `from, to < c`: the distance to the next column with residue `to`.
#[inline]
fn dist_to_residue(from: usize, to: usize, c: usize) -> usize {
    let d = (to + c - from) % c;
    if d == 0 {
        c
    } else {
        d
    }
}

/// Copy `dst[k] = src[base + k*b]` for `k = 0..dst.len()` in `W`-lane
/// strips. All source indices are in bounds by the run invariant; the
/// slice bounds checks merely re-prove it.
#[inline]
fn gather_run<const W: usize, T: Copy>(dst: &mut [T], src: &[T], base: usize, b: usize) {
    if b == 1 {
        dst.copy_from_slice(&src[base..base + dst.len()]);
        return;
    }
    let len = dst.len();
    let full = len - len % W;
    for k0 in (0..full).step_by(W) {
        for lane in 0..W {
            dst[k0 + lane] = src[base + (k0 + lane) * b];
        }
    }
    for k in full..len {
        dst[k] = src[base + k * b];
    }
}

/// Copy `dst[base + k*b] = src[k]` for `k = 0..src.len()` in `W`-lane
/// strips — the same run walked as a scatter.
#[inline]
fn scatter_run<const W: usize, T: Copy>(dst: &mut [T], src: &[T], base: usize, b: usize) {
    if b == 1 {
        dst[base..base + src.len()].copy_from_slice(src);
        return;
    }
    let len = src.len();
    let full = len - len % W;
    for k0 in (0..full).step_by(W) {
        for lane in 0..W {
            dst[base + (k0 + lane) * b] = src[k0 + lane];
        }
    }
    for k in full..len {
        dst[base + k * b] = src[k];
    }
}

/// Permute one row by enumerating the arithmetic runs of `d'^-1_i`.
///
/// `Inverse` gathers with `d'^-1_i` (`dst[j + k] = src[base + k*b]`);
/// `Forward` is the same permutation applied the other way — a scatter
/// with `d'^-1_i` (`dst[base + k*b] = src[j + k]`) — so both directions
/// share one run enumeration.
pub(super) fn apply_row<const W: usize, T: Copy>(
    p: &C2rParams,
    i: usize,
    src: &[T],
    dst: &mut [T],
    dir: ShuffleDirection,
) {
    let (m, n, c, b) = (p.m, p.n, p.c, p.b);
    let i_res = i % c;
    let thr = (i + c).saturating_sub(m); // <= c - 1 since i <= m - 1
    let mut j = 0usize;
    let mut j_res = 0usize; // j mod c, maintained incrementally
    while j < n {
        let len = dist_to_residue(j_res, 0, c)
            .min(dist_to_residue(j_res, i_res, c))
            .min(dist_to_residue(j_res, thr, c))
            .min(n - j);
        let base = p.d_inv(i, j);
        match dir {
            ShuffleDirection::Inverse => {
                gather_run::<W, T>(&mut dst[j..j + len], src, base, b);
            }
            ShuffleDirection::Forward => {
                scatter_run::<W, T>(dst, &src[j..j + len], base, b);
            }
        }
        j += len;
        j_res += len;
        if j_res >= c {
            j_res -= c; // len <= c keeps the residue one subtraction away
        }
    }
}
