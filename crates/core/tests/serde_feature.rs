//! Round-trip tests for the optional `serde` feature
//! (`cargo test -p ipt-core --features serde`).
#![cfg(feature = "serde")]

use ipt_core::{Algorithm, Layout, Matrix};

#[test]
fn layout_round_trips_as_json() {
    for layout in [Layout::RowMajor, Layout::ColMajor] {
        let json = serde_json::to_string(&layout).unwrap();
        let back: Layout = serde_json::from_str(&json).unwrap();
        assert_eq!(back, layout);
    }
    assert_eq!(serde_json::to_string(&Layout::RowMajor).unwrap(), "\"RowMajor\"");
}

#[test]
fn algorithm_round_trips_as_json() {
    for alg in [Algorithm::C2r, Algorithm::R2c, Algorithm::Auto] {
        let json = serde_json::to_string(&alg).unwrap();
        let back: Algorithm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, alg);
    }
}

#[test]
fn matrix_round_trips_with_shape_and_data() {
    let m = Matrix::from_fn(3, 4, Layout::ColMajor, |i, j| (i * 10 + j) as u64);
    let json = serde_json::to_string(&m).unwrap();
    let back: Matrix<u64> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, m);
    assert_eq!(back.rows(), 3);
    assert_eq!(back.cols(), 4);
    assert_eq!(back.get(2, 3), 23);
}

#[test]
fn serialized_matrix_survives_a_transpose_round_trip() {
    // Serialize, deserialize, transpose, and check against transposing
    // the original: serialization must not desynchronize shape/layout.
    let mut original = Matrix::from_fn(5, 7, Layout::RowMajor, |i, j| (i * 100 + j) as u32);
    let mut restored: Matrix<u32> =
        serde_json::from_str(&serde_json::to_string(&original).unwrap()).unwrap();
    let mut s = ipt_core::Scratch::new();
    original.transpose_in_place(&mut s);
    restored.transpose_in_place(&mut s);
    assert_eq!(original, restored);
}
