//! Direct verifications of the paper's formal statements (Theorems 1–7,
//! Lemmas 1–3), executed as code rather than read as prose.
//!
//! Each test builds the objects a theorem quantifies over and checks the
//! claimed identity exhaustively on a family of shapes, including the
//! boundary structure (coprime dimensions, square matrices, `b == 1`,
//! `a == 1`) where off-by-one transcription errors would hide.

use ipt_core::gcd::{cab, gcd, mmi};
use ipt_core::layout::{irm, jrm, lrm};
use ipt_core::{c2r, C2rParams, Scratch};

fn shapes() -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for m in 1..=14 {
        for n in 1..=14 {
            v.push((m, n));
        }
    }
    v.extend_from_slice(&[(3, 8), (4, 8), (16, 40), (40, 16), (17, 19), (25, 35)]);
    v
}

/// Out-of-place C2R by the *defining* gather equations (Eq. 11):
/// `A_C2R[i, j] = A[s(i, j), c(i, j)]` with `s = l_rm mod m`,
/// `c = floor(l_rm / m)`.
fn c2r_by_definition(a: &[u64], m: usize, n: usize) -> Vec<u64> {
    let mut out = vec![0u64; m * n];
    for i in 0..m {
        for j in 0..n {
            let l = lrm(i, j, n);
            let (s, c) = (l % m, l / m);
            out[lrm(i, j, n)] = a[lrm(s, c, n)];
        }
    }
    out
}

#[test]
fn theorem_1_c2r_is_row_major_transposition() {
    // The row-major linearization of A^T equals the row-major
    // linearization of A_C2R.
    for (m, n) in shapes() {
        let a: Vec<u64> = (0..(m * n) as u64).collect();
        // linearized transpose: A^T is n x m with A^T[i][j] = A[j][i]
        let mut t = vec![0u64; m * n];
        for i in 0..n {
            for j in 0..m {
                t[lrm(i, j, m)] = a[lrm(j, i, n)];
            }
        }
        assert_eq!(c2r_by_definition(&a, m, n), t, "{m}x{n}");
    }
}

#[test]
fn theorem_1_in_place_algorithm_matches_definition() {
    // Algorithm 1 (three decomposed steps) computes exactly the Eq. 11
    // permutation.
    let mut s = Scratch::new();
    for (m, n) in shapes() {
        let a: Vec<u64> = (0..(m * n) as u64).collect();
        let want = c2r_by_definition(&a, m, n);
        let mut got = a;
        c2r(&mut got, m, n, &mut s);
        assert_eq!(got, want, "{m}x{n}");
    }
}

#[test]
fn theorem_2_dimension_swap() {
    // Swapping m and n first, the R2C transpose also transposes row-major
    // arrays: r2c with swapped parameters equals c2r.
    let mut s = Scratch::new();
    for (m, n) in shapes() {
        let a: Vec<u32> = (0..(m * n) as u32).collect();
        let mut via_c2r = a.clone();
        c2r(&mut via_c2r, m, n, &mut s);
        let mut via_r2c = a;
        ipt_core::r2c(&mut via_r2c, n, m, &mut s);
        assert_eq!(via_c2r, via_r2c, "{m}x{n}");
    }
}

#[test]
fn lemma_1_unrotated_destination_is_periodic_with_period_b() {
    for (m, n) in shapes() {
        let (_, _, b) = cab(m, n);
        for i in 0..m {
            for j in 0..n {
                let d = |jj: usize| (i + jj * m) % n;
                if j + b < n {
                    assert_eq!(d(j), d(j + b), "{m}x{n} i={i} j={j}");
                }
            }
        }
    }
}

#[test]
fn lemma_2_multiples_of_m_are_distinct_mod_n_below_b() {
    for (m, n) in shapes() {
        let (_, _, b) = cab(m, n);
        let mut seen = std::collections::HashSet::new();
        for x in 0..b {
            assert!(seen.insert(m * x % n), "{m}x{n} collision at x={x}");
        }
    }
}

#[test]
fn lemma_3_multiples_of_m_mod_n_equal_multiples_of_c() {
    // { h*m mod n : h in [0, b) } == { h*c : h in [0, b) }.
    for (m, n) in shapes() {
        let (c, _, b) = cab(m, n);
        let s: std::collections::BTreeSet<usize> = (0..b).map(|h| h * m % n).collect();
        let t: std::collections::BTreeSet<usize> = (0..b).map(|h| h * c).collect();
        assert_eq!(s, t, "{m}x{n}");
    }
}

#[test]
fn theorem_3_rotated_destination_is_bijective() {
    // d'_i(j) is a bijection on [0, n) for every fixed i (the keystone of
    // the decomposition).
    for (m, n) in shapes() {
        let p = C2rParams::new(m, n);
        for i in 0..m {
            let mut hit = vec![false; n];
            for j in 0..n {
                let d = p.d(i, j);
                assert!(!hit[d], "{m}x{n} i={i}");
                hit[d] = true;
            }
        }
    }
}

#[test]
fn theorem_3_note_coprime_needs_no_rotation() {
    // When gcd(m, n) = 1, d'_i == d_i: the natural destination function is
    // already bijective and Algorithm 1 skips the pre-rotation.
    for (m, n) in shapes() {
        if gcd(m as u64, n as u64) != 1 {
            continue;
        }
        let p = C2rParams::new(m, n);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(p.d(i, j), p.d_unrotated(i, j), "{m}x{n}");
            }
        }
    }
}

#[test]
fn theorem_5_s_prime_completes_the_transposition() {
    // After pre-rotation and row shuffle, gathering columns with s'_j must
    // finish the transpose; verified by running the three steps separately
    // against the one-shot definition in theorem_1 tests, and here by the
    // claimed bound on source columns: c_j(i) lands in tile k = floor(i/a).
    for (m, n) in shapes() {
        let (_, a, b) = cab(m, n);
        for i in 0..m {
            let k = i / a;
            for j in 0..n {
                let c_ji = (j + i * n) / m;
                assert!(
                    (k * b..(k + 1) * b).contains(&c_ji),
                    "{m}x{n}: c_{j}({i}) = {c_ji} outside tile {k}"
                );
            }
        }
    }
}

#[test]
fn theorem_6_work_is_bounded_by_six_accesses_per_element() {
    // Instrument the data movement: run Algorithm 1 on a matrix of
    // counters... simplest faithful accounting: each of the three steps
    // reads and writes each element at most twice (gather to scratch +
    // copy back), so total accesses <= 6 reads + 6 writes. We verify the
    // *pass structure*: each step is two sweeps over its row/column.
    // Executable proxy: time-stamping writes. Every element's final value
    // must be written by the last pass, and the number of passes is 3.
    // Here we check the auxiliary-space half of the theorem exactly:
    // the scratch buffer never exceeds max(m, n) elements.
    for (m, n) in shapes() {
        let mut s: Scratch<u64> = Scratch::new();
        let mut a: Vec<u64> = (0..(m * n) as u64).collect();
        c2r(&mut a, m, n, &mut s);
        assert!(
            s.len() <= m.max(n).max(1),
            "{m}x{n}: scratch {} exceeds max(m, n)",
            s.len()
        );
    }
}

#[test]
fn theorem_7_linearization_choice_does_not_change_the_permutation() {
    // Performing the C2R data movement with column-major indexing on a
    // row-major array yields the same final buffer (Eq. 28 ff).
    for (m, n) in shapes() {
        let a: Vec<u64> = (0..(m * n) as u64).collect();
        // Row-major-indexed C2R (Eq. 11), as in c2r_by_definition.
        let via_rm = c2r_by_definition(&a, m, n);
        // Column-major-indexed C2R: B[l] = A[l_cm(s(i_cm, j_cm), c(...))].
        let mut via_cm = vec![0u64; m * n];
        for (l, slot) in via_cm.iter_mut().enumerate() {
            let (i, j) = (l % m, l / m); // i_cm, j_cm
            let lr = j + i * n; // l_rm(i, j)
            let (s_, c_) = (lr % m, lr / m);
            *slot = a[s_ + c_ * m]; // l_cm(s, c)
        }
        assert_eq!(via_rm, via_cm, "{m}x{n}");
    }
}

#[test]
#[allow(clippy::needless_range_loop)]
fn section_4_2_inverse_formulas_match_brute_force_inverses() {
    // Eq. 31 (d'^-1) and Eq. 34 (q^-1) against explicitly inverted
    // permutations.
    for (m, n) in shapes() {
        let p = C2rParams::new(m, n);
        for i in 0..m {
            let mut inv = vec![usize::MAX; n];
            for j in 0..n {
                inv[p.d(i, j)] = j;
            }
            for j in 0..n {
                assert_eq!(p.d_inv(i, j), inv[j], "{m}x{n} d_inv i={i}");
            }
        }
        let mut qinv = vec![usize::MAX; m];
        for i in 0..m {
            qinv[p.q(i)] = i;
        }
        for i in 0..m {
            assert_eq!(p.q_inv(i), qinv[i], "{m}x{n} q_inv");
        }
    }
}

#[test]
fn section_4_2_modular_inverse_preconditions() {
    // a and b are coprime by construction, so the inverses of Eqs. 31/34
    // always exist — including the degenerate moduli (a == 1 or b == 1).
    for (m, n) in shapes() {
        let (_, a, b) = cab(m, n);
        assert_eq!(gcd(a as u64, b as u64), 1);
        let a_inv = mmi(a as u64, b as u64);
        let b_inv = mmi(b as u64, a as u64);
        if b > 1 {
            assert_eq!((a as u64 % b as u64) * a_inv % b as u64, 1);
        }
        if a > 1 {
            assert_eq!((b as u64 % a as u64) * b_inv % a as u64, 1);
        }
    }
}

#[test]
fn section_4_6_rotation_cycle_count() {
    // Rotating m elements by r decomposes into exactly gcd(m, r) cycles of
    // length m / gcd(m, r) — the analytic structure that makes the
    // cache-aware coarse rotation descriptor-free.
    for m in 1..=48usize {
        for r in 1..m {
            let z = gcd(m as u64, r as u64) as usize;
            // Count cycles by walking.
            let mut seen = vec![false; m];
            let mut cycles = 0usize;
            for start in 0..m {
                if seen[start] {
                    continue;
                }
                cycles += 1;
                let mut i = start;
                let mut len = 0usize;
                loop {
                    seen[i] = true;
                    len += 1;
                    i = (i + r) % m;
                    if i == start {
                        break;
                    }
                }
                assert_eq!(len, m / z, "m={m} r={r}");
            }
            assert_eq!(cycles, z, "m={m} r={r}");
        }
    }
}

#[test]
fn eq_37_throughput_convention() {
    // The harnesses use the paper's metric; pin the convention here so a
    // refactor can't silently change units: 2*m*n*s bytes per transpose.
    let bytes_moved = |m: usize, n: usize, s: usize| 2 * m * n * s;
    assert_eq!(bytes_moved(1000, 1000, 8), 16_000_000);
    // irm/jrm round-trip, used throughout the harness verifiers.
    for l in 0..1000 {
        assert_eq!(lrm(irm(l, 13), jrm(l, 13), 13), l);
    }
}
