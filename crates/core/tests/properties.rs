//! Property-based tests for the core invariants of the decomposition.
//!
//! These are the load-bearing guarantees of the paper, checked over
//! randomized shapes and data rather than hand-picked examples:
//! Theorems 1–5 and 7 (correctness), the inverse relationships between the
//! gather/scatter index functions, and the strength-reduced arithmetic.

use ipt_core::check::{fill_pattern, reference_transpose};
use ipt_core::fastdiv::FastDivMod;
use ipt_core::gcd::{cab, gcd, mmi};
use ipt_core::rotate::rotate_left_cycles;
use ipt_core::{c2r, r2c, transpose, Algorithm, C2rParams, Layout, Scratch};
use proptest::prelude::*;

/// Shapes are kept modest so a property case runs in microseconds; the
/// scale-out coverage lives in the benchmark harnesses' --verify mode.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..96, 1usize..96)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn c2r_equals_reference_transpose((m, n) in shape(), seed in any::<u64>()) {
        let mut data: Vec<u64> = (0..(m * n) as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let want = reference_transpose(&data, m, n, Layout::RowMajor);
        c2r(&mut data, m, n, &mut Scratch::new());
        prop_assert_eq!(data, want);
    }

    #[test]
    fn r2c_with_swapped_dims_equals_reference((m, n) in shape()) {
        let mut data = vec![0u64; m * n];
        fill_pattern(&mut data);
        let want = reference_transpose(&data, m, n, Layout::RowMajor);
        r2c(&mut data, n, m, &mut Scratch::new());
        prop_assert_eq!(data, want);
    }

    #[test]
    fn r2c_inverts_c2r((m, n) in shape(), seed in any::<u32>()) {
        let mut data: Vec<u32> = (0..(m * n) as u32).map(|i| i ^ seed).collect();
        let orig = data.clone();
        let mut s = Scratch::new();
        c2r(&mut data, m, n, &mut s);
        r2c(&mut data, m, n, &mut s);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn transpose_twice_is_identity(
        (m, n) in shape(),
        layout in prop_oneof![Just(Layout::RowMajor), Just(Layout::ColMajor)],
    ) {
        let mut data = vec![0u32; m * n];
        fill_pattern(&mut data);
        let orig = data.clone();
        let mut s = Scratch::new();
        transpose(&mut data, m, n, layout, &mut s);
        transpose(&mut data, n, m, layout, &mut s);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn both_algorithms_agree_on_both_layouts(
        (m, n) in shape(),
        layout in prop_oneof![Just(Layout::RowMajor), Just(Layout::ColMajor)],
    ) {
        let mut a = vec![0u64; m * n];
        fill_pattern(&mut a);
        let mut b = a.clone();
        let mut s = Scratch::new();
        ipt_core::transpose_with(&mut a, m, n, layout, Algorithm::C2r, &mut s);
        ipt_core::transpose_with(&mut b, m, n, layout, Algorithm::R2c, &mut s);
        prop_assert_eq!(&a, &b);
        let mut want = vec![0u64; m * n];
        fill_pattern(&mut want);
        let want = reference_transpose(&want, m, n, layout);
        prop_assert_eq!(a, want);
    }

    #[test]
    fn d_is_bijective_and_inverted_by_d_inv((m, n) in shape(), i in 0usize..96) {
        let i = i % m;
        let p = C2rParams::new(m, n);
        let mut seen = vec![false; n];
        for j in 0..n {
            let t = p.d(i, j);
            prop_assert!(t < n);
            prop_assert!(!seen[t]);
            seen[t] = true;
            prop_assert_eq!(p.d_inv(i, t), j);
        }
    }

    #[test]
    fn q_bijective_q_inv_inverts((m, n) in shape()) {
        let p = C2rParams::new(m, n);
        let mut seen = vec![false; m];
        for i in 0..m {
            let t = p.q(i);
            prop_assert!(t < m);
            prop_assert!(!seen[t]);
            seen[t] = true;
            prop_assert_eq!(p.q_inv(t), i);
        }
    }

    #[test]
    fn s_decomposition_identity((m, n) in shape(), j in 0usize..96, i in 0usize..96) {
        let (j, i) = (j % n, i % m);
        let p = C2rParams::new(m, n);
        prop_assert_eq!(p.p(j, p.q(i)), p.s(j, i));
    }

    #[test]
    fn fastdiv_matches_hardware(x in any::<u64>(), d in 1u64..) {
        let f = FastDivMod::new(d);
        prop_assert_eq!(f.div(x), x / d);
        prop_assert_eq!(f.rem(x), x % d);
        let (q, r) = f.divrem(x);
        prop_assert_eq!((q, r), (x / d, x % d));
    }

    #[test]
    fn gcd_properties(a in any::<u64>(), b in any::<u64>()) {
        let g = gcd(a, b);
        if a != 0 || b != 0 {
            prop_assert!(g > 0);
            if a != 0 { prop_assert_eq!(a % g, 0); }
            if b != 0 { prop_assert_eq!(b % g, 0); }
        } else {
            prop_assert_eq!(g, 0);
        }
        prop_assert_eq!(g, gcd(b, a));
    }

    #[test]
    fn mmi_property(v in 1u64..10_000, m in 2u64..10_000) {
        prop_assume!(gcd(v, m) == 1);
        let inv = mmi(v, m);
        prop_assert_eq!((v % m) * inv % m, 1);
    }

    #[test]
    fn cab_reconstructs_dims(m in 1usize..100_000, n in 1usize..100_000) {
        let (c, a, b) = cab(m, n);
        prop_assert_eq!(a * c, m);
        prop_assert_eq!(b * c, n);
        prop_assert_eq!(gcd(a as u64, b as u64), 1);
    }

    #[test]
    fn rotation_matches_slice_rotate(len in 0usize..200, r in 0usize..400) {
        let mut ours: Vec<u32> = (0..len as u32).collect();
        let mut std_rot = ours.clone();
        rotate_left_cycles(&mut ours, r);
        if len > 0 {
            std_rot.rotate_left(r % len);
        }
        prop_assert_eq!(ours, std_rot);
    }

    #[test]
    fn matrix_owned_transpose_matches_reference(
        (m, n) in shape(),
        layout in prop_oneof![Just(Layout::RowMajor), Just(Layout::ColMajor)],
    ) {
        let mat = ipt_core::Matrix::from_fn(m, n, layout, |i, j| (i * 1000 + j) as u64);
        let want = mat.transposed();
        let mut got = mat;
        got.transpose_in_place(&mut Scratch::new());
        prop_assert_eq!(got.rows(), want.rows());
        prop_assert_eq!(got.cols(), want.cols());
        prop_assert_eq!(got.as_slice(), want.as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn noncopy_swaps_match_copy_path((m, n) in shape()) {
        let mut a = vec![0u64; m * n];
        fill_pattern(&mut a);
        let mut b = a.clone();
        ipt_core::noncopy::c2r_swaps(&mut a, m, n);
        c2r(&mut b, m, n, &mut Scratch::new());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn noncopy_r2c_inverts_noncopy_c2r((m, n) in shape()) {
        // On a genuinely non-Copy type.
        let orig: Vec<String> = (0..m * n).map(|i| i.to_string()).collect();
        let mut a = orig.clone();
        ipt_core::noncopy::c2r_swaps(&mut a, m, n);
        ipt_core::noncopy::r2c_swaps(&mut a, m, n);
        prop_assert_eq!(a, orig);
    }

    #[test]
    fn erased_matches_typed_for_all_element_sizes(
        (m, n) in (1usize..32, 1usize..32),
        elem in 1usize..12,
    ) {
        // Type-erased transpose vs moving (index-tagged) chunks manually.
        let orig: Vec<u8> = (0..m * n * elem).map(|x| (x % 251) as u8).collect();
        let mut got = orig.clone();
        ipt_core::erased::transpose_erased(&mut got, m, n, elem, Layout::RowMajor);
        for i in 0..n {
            for j in 0..m {
                let dst = (i * m + j) * elem;
                let src = (j * n + i) * elem;
                prop_assert_eq!(&got[dst..dst + elem], &orig[src..src + elem]);
            }
        }
    }

    #[test]
    fn erased_round_trip((m, n) in shape(), elem in 1usize..9) {
        let orig: Vec<u8> = (0..m * n * elem).map(|x| x as u8).collect();
        let mut a = orig.clone();
        ipt_core::erased::c2r_erased(&mut a, m, n, elem);
        ipt_core::erased::r2c_erased(&mut a, m, n, elem);
        prop_assert_eq!(a, orig);
    }
}

/// Non-proptest randomized sweep over a wider shape range, with shapes that
/// specifically stress the gcd structure (c == 1, c == min, prime dims).
#[test]
fn structured_shape_sweep() {
    let mut s = Scratch::new();
    let interesting: Vec<(usize, usize)> = vec![
        (128, 128),
        (128, 127),
        (127, 128),
        (127, 251),   // both prime
        (120, 360),   // n = 3m
        (360, 120),
        (256, 96),    // large gcd
        (97, 389),    // coprime
        (2, 500),
        (500, 2),
        (33, 1000),
        (1000, 33),
    ];
    for (m, n) in interesting {
        let mut data = vec![0u64; m * n];
        fill_pattern(&mut data);
        let want = reference_transpose(&data, m, n, Layout::RowMajor);
        c2r(&mut data, m, n, &mut s);
        assert_eq!(data, want, "{m}x{n}");
    }
}
