//! Property-based tests for the core invariants of the decomposition.
//!
//! These are the load-bearing guarantees of the paper, checked over
//! randomized shapes and data rather than hand-picked examples:
//! Theorems 1–5 and 7 (correctness), the inverse relationships between the
//! gather/scatter index functions, and the strength-reduced arithmetic.
//!
//! Randomness comes from the deterministic [`Rng`] in `ipt_core::check`
//! (SplitMix64, fixed per-test seeds), so every run of the suite executes
//! exactly the same cases — a failure message's `case` index pins the
//! reproduction with no shrinking or regression files needed.

use ipt_core::check::{fill_pattern, reference_transpose, Rng};
use ipt_core::fastdiv::FastDivMod;
use ipt_core::gcd::{cab, gcd, mmi};
use ipt_core::rotate::rotate_left_cycles;
use ipt_core::{c2r, r2c, transpose, Algorithm, C2rParams, Layout, Scratch};

const CASES: usize = 256;

/// Shapes are kept modest so a case runs in microseconds; the scale-out
/// coverage lives in the benchmark harnesses' --verify mode.
fn shape(rng: &mut Rng) -> (usize, usize) {
    (rng.range(1..96), rng.range(1..96))
}

fn layout(rng: &mut Rng) -> Layout {
    if rng.chance(1, 2) {
        Layout::RowMajor
    } else {
        Layout::ColMajor
    }
}

#[test]
fn c2r_equals_reference_transpose() {
    let mut rng = Rng::new(0xc2f0_0001);
    for case in 0..CASES {
        let (m, n) = shape(&mut rng);
        let seed = rng.next_u64();
        let mut data: Vec<u64> = (0..(m * n) as u64)
            .map(|i| i.wrapping_mul(seed | 1))
            .collect();
        let want = reference_transpose(&data, m, n, Layout::RowMajor);
        c2r(&mut data, m, n, &mut Scratch::new());
        assert_eq!(data, want, "case {case}: {m}x{n} seed={seed}");
    }
}

#[test]
fn r2c_with_swapped_dims_equals_reference() {
    let mut rng = Rng::new(0xc2f0_0002);
    for case in 0..CASES {
        let (m, n) = shape(&mut rng);
        let mut data = vec![0u64; m * n];
        fill_pattern(&mut data);
        let want = reference_transpose(&data, m, n, Layout::RowMajor);
        r2c(&mut data, n, m, &mut Scratch::new());
        assert_eq!(data, want, "case {case}: {m}x{n}");
    }
}

#[test]
fn r2c_inverts_c2r() {
    let mut rng = Rng::new(0xc2f0_0003);
    for case in 0..CASES {
        let (m, n) = shape(&mut rng);
        let seed = rng.next_u64() as u32;
        let mut data: Vec<u32> = (0..(m * n) as u32).map(|i| i ^ seed).collect();
        let orig = data.clone();
        let mut s = Scratch::new();
        c2r(&mut data, m, n, &mut s);
        r2c(&mut data, m, n, &mut s);
        assert_eq!(data, orig, "case {case}: {m}x{n} seed={seed}");
    }
}

#[test]
fn transpose_twice_is_identity() {
    let mut rng = Rng::new(0xc2f0_0004);
    for case in 0..CASES {
        let (m, n) = shape(&mut rng);
        let layout = layout(&mut rng);
        let mut data = vec![0u32; m * n];
        fill_pattern(&mut data);
        let orig = data.clone();
        let mut s = Scratch::new();
        transpose(&mut data, m, n, layout, &mut s);
        transpose(&mut data, n, m, layout, &mut s);
        assert_eq!(data, orig, "case {case}: {m}x{n} {layout:?}");
    }
}

#[test]
fn both_algorithms_agree_on_both_layouts() {
    let mut rng = Rng::new(0xc2f0_0005);
    for case in 0..CASES {
        let (m, n) = shape(&mut rng);
        let layout = layout(&mut rng);
        let mut a = vec![0u64; m * n];
        fill_pattern(&mut a);
        let mut b = a.clone();
        let mut s = Scratch::new();
        ipt_core::transpose_with(&mut a, m, n, layout, Algorithm::C2r, &mut s);
        ipt_core::transpose_with(&mut b, m, n, layout, Algorithm::R2c, &mut s);
        assert_eq!(&a, &b, "case {case}: {m}x{n} {layout:?}");
        let mut want = vec![0u64; m * n];
        fill_pattern(&mut want);
        let want = reference_transpose(&want, m, n, layout);
        assert_eq!(a, want, "case {case}: {m}x{n} {layout:?}");
    }
}

#[test]
fn d_is_bijective_and_inverted_by_d_inv() {
    let mut rng = Rng::new(0xc2f0_0006);
    for case in 0..CASES {
        let (m, n) = shape(&mut rng);
        let i = rng.range(0..m);
        let p = C2rParams::new(m, n);
        let mut seen = vec![false; n];
        for j in 0..n {
            let t = p.d(i, j);
            assert!(t < n, "case {case}: {m}x{n} i={i} j={j}");
            assert!(!seen[t], "case {case}: {m}x{n} i={i} j={j}");
            seen[t] = true;
            assert_eq!(p.d_inv(i, t), j, "case {case}: {m}x{n} i={i}");
        }
    }
}

#[test]
fn q_bijective_q_inv_inverts() {
    let mut rng = Rng::new(0xc2f0_0007);
    for case in 0..CASES {
        let (m, n) = shape(&mut rng);
        let p = C2rParams::new(m, n);
        let mut seen = vec![false; m];
        for i in 0..m {
            let t = p.q(i);
            assert!(t < m, "case {case}: {m}x{n} i={i}");
            assert!(!seen[t], "case {case}: {m}x{n} i={i}");
            seen[t] = true;
            assert_eq!(p.q_inv(t), i, "case {case}: {m}x{n}");
        }
    }
}

#[test]
fn s_decomposition_identity() {
    let mut rng = Rng::new(0xc2f0_0008);
    for case in 0..CASES {
        let (m, n) = shape(&mut rng);
        let (j, i) = (rng.range(0..n), rng.range(0..m));
        let p = C2rParams::new(m, n);
        assert_eq!(
            p.p(j, p.q(i)),
            p.s(j, i),
            "case {case}: {m}x{n} i={i} j={j}"
        );
    }
}

#[test]
fn fastdiv_matches_hardware() {
    let mut rng = Rng::new(0xc2f0_0009);
    for case in 0..CASES {
        let x = rng.next_u64();
        let d = rng.next_u64().max(1);
        let f = FastDivMod::new(d);
        assert_eq!(f.div(x), x / d, "case {case}: x={x} d={d}");
        assert_eq!(f.rem(x), x % d, "case {case}: x={x} d={d}");
        let (q, r) = f.divrem(x);
        assert_eq!((q, r), (x / d, x % d), "case {case}: x={x} d={d}");
    }
    // Divisor edge cases a uniform draw essentially never hits.
    for d in [1u64, 2, 3, u64::MAX - 1, u64::MAX] {
        for x in [0u64, 1, d.wrapping_mul(3), u64::MAX] {
            let f = FastDivMod::new(d);
            assert_eq!(f.divrem(x), (x / d, x % d), "x={x} d={d}");
        }
    }
}

#[test]
fn gcd_properties() {
    let mut rng = Rng::new(0xc2f0_000a);
    for case in 0..CASES {
        // Mix full-range and small draws so both code paths are hit.
        let a = if rng.chance(1, 2) {
            rng.next_u64()
        } else {
            rng.next_u64() % 1000
        };
        let b = if rng.chance(1, 2) {
            rng.next_u64()
        } else {
            rng.next_u64() % 1000
        };
        let g = gcd(a, b);
        if a != 0 || b != 0 {
            assert!(g > 0, "case {case}: a={a} b={b}");
            if a != 0 {
                assert_eq!(a % g, 0, "case {case}: a={a} b={b}");
            }
            if b != 0 {
                assert_eq!(b % g, 0, "case {case}: a={a} b={b}");
            }
        } else {
            assert_eq!(g, 0, "case {case}");
        }
        assert_eq!(g, gcd(b, a), "case {case}: a={a} b={b}");
    }
    assert_eq!(gcd(0, 0), 0);
}

#[test]
fn mmi_property() {
    let mut rng = Rng::new(0xc2f0_000b);
    let mut checked = 0usize;
    while checked < CASES {
        let v = rng.range(1..10_000) as u64;
        let m = rng.range(2..10_000) as u64;
        if gcd(v, m) != 1 {
            continue;
        }
        checked += 1;
        let inv = mmi(v, m);
        assert_eq!((v % m) * inv % m, 1, "v={v} m={m}");
    }
}

#[test]
fn cab_reconstructs_dims() {
    let mut rng = Rng::new(0xc2f0_000c);
    for case in 0..CASES {
        let m = rng.range(1..100_000);
        let n = rng.range(1..100_000);
        let (c, a, b) = cab(m, n);
        assert_eq!(a * c, m, "case {case}: {m}x{n}");
        assert_eq!(b * c, n, "case {case}: {m}x{n}");
        assert_eq!(gcd(a as u64, b as u64), 1, "case {case}: {m}x{n}");
    }
}

#[test]
fn rotation_matches_slice_rotate() {
    let mut rng = Rng::new(0xc2f0_000d);
    for case in 0..CASES {
        let len = rng.range(0..200);
        let r = rng.range(0..400);
        let mut ours: Vec<u32> = (0..len as u32).collect();
        let mut std_rot = ours.clone();
        rotate_left_cycles(&mut ours, r);
        if len > 0 {
            std_rot.rotate_left(r % len);
        }
        assert_eq!(ours, std_rot, "case {case}: len={len} r={r}");
    }
}

#[test]
fn matrix_owned_transpose_matches_reference() {
    let mut rng = Rng::new(0xc2f0_000e);
    for case in 0..CASES {
        let (m, n) = shape(&mut rng);
        let layout = layout(&mut rng);
        let mat = ipt_core::Matrix::from_fn(m, n, layout, |i, j| (i * 1000 + j) as u64);
        let want = mat.transposed();
        let mut got = mat;
        got.transpose_in_place(&mut Scratch::new());
        assert_eq!(got.rows(), want.rows(), "case {case}: {m}x{n} {layout:?}");
        assert_eq!(got.cols(), want.cols(), "case {case}: {m}x{n} {layout:?}");
        assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "case {case}: {m}x{n} {layout:?}"
        );
    }
}

#[test]
fn noncopy_swaps_match_copy_path() {
    let mut rng = Rng::new(0xc2f0_000f);
    for case in 0..CASES / 2 {
        let (m, n) = shape(&mut rng);
        let mut a = vec![0u64; m * n];
        fill_pattern(&mut a);
        let mut b = a.clone();
        ipt_core::noncopy::c2r_swaps(&mut a, m, n);
        c2r(&mut b, m, n, &mut Scratch::new());
        assert_eq!(a, b, "case {case}: {m}x{n}");
    }
}

#[test]
fn noncopy_r2c_inverts_noncopy_c2r() {
    let mut rng = Rng::new(0xc2f0_0010);
    for case in 0..CASES / 2 {
        let (m, n) = shape(&mut rng);
        // On a genuinely non-Copy type.
        let orig: Vec<String> = (0..m * n).map(|i| i.to_string()).collect();
        let mut a = orig.clone();
        ipt_core::noncopy::c2r_swaps(&mut a, m, n);
        ipt_core::noncopy::r2c_swaps(&mut a, m, n);
        assert_eq!(a, orig, "case {case}: {m}x{n}");
    }
}

#[test]
fn erased_matches_typed_for_all_element_sizes() {
    let mut rng = Rng::new(0xc2f0_0011);
    for case in 0..CASES / 2 {
        let (m, n) = (rng.range(1..32), rng.range(1..32));
        let elem = rng.range(1..12);
        // Type-erased transpose vs moving (index-tagged) chunks manually.
        let orig: Vec<u8> = (0..m * n * elem).map(|x| (x % 251) as u8).collect();
        let mut got = orig.clone();
        ipt_core::erased::transpose_erased(&mut got, m, n, elem, Layout::RowMajor);
        for i in 0..n {
            for j in 0..m {
                let dst = (i * m + j) * elem;
                let src = (j * n + i) * elem;
                assert_eq!(
                    &got[dst..dst + elem],
                    &orig[src..src + elem],
                    "case {case}: {m}x{n} elem={elem} ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn erased_round_trip() {
    let mut rng = Rng::new(0xc2f0_0012);
    for case in 0..CASES / 2 {
        let (m, n) = shape(&mut rng);
        let elem = rng.range(1..9);
        let orig: Vec<u8> = (0..m * n * elem).map(|x| x as u8).collect();
        let mut a = orig.clone();
        ipt_core::erased::c2r_erased(&mut a, m, n, elem);
        ipt_core::erased::r2c_erased(&mut a, m, n, elem);
        assert_eq!(a, orig, "case {case}: {m}x{n} elem={elem}");
    }
}

/// Non-randomized sweep over a wider shape range, with shapes that
/// specifically stress the gcd structure (c == 1, c == min, prime dims).
#[test]
fn structured_shape_sweep() {
    let mut s = Scratch::new();
    let interesting: Vec<(usize, usize)> = vec![
        (128, 128),
        (128, 127),
        (127, 128),
        (127, 251), // both prime
        (120, 360), // n = 3m
        (360, 120),
        (256, 96), // large gcd
        (97, 389), // coprime
        (2, 500),
        (500, 2),
        (33, 1000),
        (1000, 33),
    ];
    for (m, n) in interesting {
        let mut data = vec![0u64; m * n];
        fill_pattern(&mut data);
        let want = reference_transpose(&data, m, n, Layout::RowMajor);
        c2r(&mut data, m, n, &mut s);
        assert_eq!(data, want, "{m}x{n}");
    }
}
