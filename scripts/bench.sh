#!/usr/bin/env bash
# Regenerate the committed benchmark baselines at the repo root —
# BENCH_transpose.json, BENCH_parallel.json, BENCH_kernels.json,
# BENCH_aos.json and BENCH_batched.json — via `ipt-cli bench` (release
# build). Ends with a self-compare of each fresh file as a sanity check
# that the emit → parse → compare pipeline round-trips.
#
# Usage: scripts/bench.sh [extra ipt-cli bench flags, e.g. --quick]
#
# Knobs:
#   IPT_BENCH_HISTORY_DIR  if set, every suite run is also archived into
#                          this directory as a dated ipt-bench-report-v1
#                          file (the `--history` trend archive; gate a
#                          later run with
#                          `ipt-cli bench --compare NEW --history DIR`).
#   IPT_BENCH_HISTORY_KEEP per-suite retention for that archive (default
#                          24 here): after each run the suite's archive
#                          is pruned to the newest N files, oldest first,
#                          so a long-lived history dir stays bounded. The
#                          CLI reads the same variable itself when --keep
#                          is omitted; this script just supplies a default.
#
# On a multi-core host (nproc > 1) the parallel and aos suites run with
# --scaling: the report gains the tall-skinny cycle-bundle shape and (for
# parallel) a 1-thread r2c_parallel_plain_1t twin, so each archive entry
# carries the host's scaling-efficiency ratio. Single-core hosts skip it
# — a 1-vs-1 "scaling" entry would be noise.
#
# Numbers are machine-dependent: regenerate on the machine you compare
# on, and gate changes with
#   ipt-cli bench --suite <s> --out /tmp/new.json
#   ipt-cli bench --compare BENCH_<s>.json /tmp/new.json
# which exits 3 if any median throughput regressed by more than 10%.
# For creeping multi-run regressions, keep a history directory and use
#   ipt-cli bench --compare /tmp/new.json --history "$IPT_BENCH_HISTORY_DIR"
# which also fails on monotone drift past the threshold.

set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

SUITES=(transpose parallel kernels aos batched)

echo "== build (release) =="
cargo build --release -p ipt-cli

CLI=target/release/ipt-cli

HISTORY_FLAGS=()
if [ -n "${IPT_BENCH_HISTORY_DIR:-}" ]; then
    HISTORY_FLAGS=(--history "$IPT_BENCH_HISTORY_DIR")
    # Retention rides the CLI's own IPT_BENCH_HISTORY_KEEP routing (one
    # parser, one warn-once diagnostic); the script only sets the default.
    export IPT_BENCH_HISTORY_KEEP="${IPT_BENCH_HISTORY_KEEP:-24}"
fi

CORES=$(nproc 2> /dev/null || echo 1)

for suite in "${SUITES[@]}"; do
    echo "== suite: $suite =="
    SCALING_FLAGS=()
    if [ "$CORES" -gt 1 ]; then
        case "$suite" in
            parallel | aos) SCALING_FLAGS=(--scaling) ;;
        esac
    fi
    "$CLI" bench --suite "$suite" --out "BENCH_${suite}.json" \
        "${HISTORY_FLAGS[@]}" "${SCALING_FLAGS[@]}" "$@"
done

echo "== sanity: self-compare round-trip =="
for suite in "${SUITES[@]}"; do
    "$CLI" bench --compare "BENCH_${suite}.json" "BENCH_${suite}.json" > /dev/null
done

echo "== wrote BENCH_{transpose,parallel,kernels,aos,batched}.json =="
