#!/usr/bin/env bash
# Regenerate the committed benchmark baselines: BENCH_transpose.json,
# BENCH_parallel.json and BENCH_kernels.json at the repo root, via
# `ipt-cli bench` (release build). Ends with a self-compare of each fresh
# file as a sanity check that the emit → parse → compare pipeline
# round-trips.
#
# Usage: scripts/bench.sh [extra ipt-cli bench flags, e.g. --quick]
#
# Numbers are machine-dependent: regenerate on the machine you compare
# on, and gate changes with
#   ipt-cli bench --suite <s> --out /tmp/new.json
#   ipt-cli bench --compare BENCH_<s>.json /tmp/new.json
# which exits 3 if any median throughput regressed by more than 10%.

set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

echo "== build (release) =="
cargo build --release -p ipt-cli

CLI=target/release/ipt-cli

for suite in transpose parallel kernels; do
    echo "== suite: $suite =="
    "$CLI" bench --suite "$suite" --out "BENCH_${suite}.json" "$@"
done

echo "== sanity: self-compare round-trip =="
for suite in transpose parallel kernels; do
    "$CLI" bench --compare "BENCH_${suite}.json" "BENCH_${suite}.json" > /dev/null
done

echo "== wrote BENCH_transpose.json BENCH_parallel.json BENCH_kernels.json =="
