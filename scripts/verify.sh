#!/usr/bin/env bash
# Tier-1 verification: the workspace must build and pass its test suite
# hermetically — no registry (crates.io or mirror) access of any kind.
#
# Two belts:
#   * CARGO_NET_OFFLINE=true forbids network access outright (cargo
#     accepts only the literal strings `true`/`false` here);
#   * a throwaway CARGO_HOME presents an empty registry cache, so even a
#     dependency that happens to be cached locally fails resolution.
# Any reintroduced external dependency therefore breaks this script at
# `cargo build`, not at the next network outage.
#
# Usage: scripts/verify.sh  (from anywhere; cd's to the repo root)

set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

CARGO_HOME_TMP="$(mktemp -d)"
trap 'rm -rf "$CARGO_HOME_TMP"' EXIT

export CARGO_NET_OFFLINE=true
export CARGO_HOME="$CARGO_HOME_TMP"

echo "== tier-1: hermetic build (offline, empty registry cache) =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== tier-1: examples build =="
cargo build --release --examples

echo "== tier-1: rustdoc is warning-clean =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== tier-1: bench smoke (well-formed BENCH_*.json) =="
# A --quick single-sample run finishes in about a second; the self-compare
# exits nonzero unless the emitted report parses back as schema
# ipt-bench-report-v1, proving the emit -> parse -> compare pipeline.
BENCH_SMOKE="$CARGO_HOME_TMP/BENCH_smoke.json"
target/release/ipt-cli bench --suite transpose --quick --samples 1 \
    --out "$BENCH_SMOKE" > /dev/null
grep -q '"schema": "ipt-bench-report-v1"' "$BENCH_SMOKE"
target/release/ipt-cli bench --compare "$BENCH_SMOKE" "$BENCH_SMOKE" > /dev/null

echo "== tier-1: OK =="
