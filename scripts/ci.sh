#!/usr/bin/env bash
# Tiered CI pipeline: cheap universal gates first, the full hermetic
# verification in the middle, perf smoke last, fault containment at the
# very end (it deliberately aborts transposes). Designed so a clean
# checkout with only the pinned toolchain (rustc + cargo + rustfmt +
# clippy) passes end-to-end:
#
#   tier 0  fmt          cargo fmt --check            (seconds)
#   tier 0  clippy       cargo clippy -D warnings     (one build)
#   tier 0  shellcheck   scripts/*.sh, if installed
#   tier 1  verify       scripts/verify.sh            (hermetic build+test)
#   tier 2  rustdoc      -D warnings across the workspace
#   tier 2  calibrate    ipt-cli calibrate --force writes this box's
#                        kernel-crossover profile into the history dir;
#                        the smoke runs below execute with it loaded
#   tier 2  bench smoke  kernels/aos/batched suites: emit -> parse ->
#                        compare against the committed BENCH_*.json
#                        baselines, archiving each run into the history
#                        dir
#   tier 2  bench trend  a second kernels run gated against that history
#                        (trailing-median + drift gate, --history)
#   tier 3  sanitize     release test run of the concurrency layer with
#                        the disjointness checker live (IPT_CHECK=1) plus
#                        the fault-injection suite, then a cycle-scheduler
#                        smoke: a tall-skinny --scaling bench under
#                        IPT_FAULT + IPT_CHECK=1 must exit 4 (structured
#                        abort) or 0 — never SIGSEGV
#   tier 3  miri         cargo +nightly miri over ipt-core + ipt-pool;
#                        skips gracefully when no nightly+miri toolchain
#                        is installed (CI runs it as a soft-fail job)
#   tier 3  fault smoke  an IPT_FAULT=panic:0.05 bench run must exit
#                        with a structured TransposeAborted (code 4) —
#                        never a SIGSEGV/abort — proving panic
#                        containment end to end through the CLI
#   tier 3  recovery     the same fault-armed bench with IPT_RETRY=2 must
#                        now *complete* (exit 0, gates evaluated) — the
#                        undo/retry ladder healing every injected fault —
#                        and an IPT_FAULT=hang:1 run under IPT_WATCHDOG_MS
#                        must exit 5 via the watchdog, never wedge
#
# Usage: scripts/ci.sh [all|sanitize|fault|recovery|miri]
#   (default `all`; from anywhere — cd's to the repo root)
#
# Knobs:
#   IPT_BENCH_THRESHOLD    regression gate percent for the bench smoke
#                          (default 40 — see the note at that stage).
#   IPT_BENCH_HISTORY_DIR  where the smoke runs archive their dated
#                          reports and the calibrate stage its profile
#                          (default: a temp dir, removed on exit; set it
#                          to keep the archive, e.g. for a CI artifact
#                          upload).
#   IPT_THREADS            pool size for the sanitize/fault stages (the
#                          CI sanitize job sweeps 1, 2 and 4).

set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

stage() { echo; echo "== ci: $1 =="; }

sanitize_stage() {
    stage "sanitize: checked-mode tests, IPT_THREADS=${IPT_THREADS:-auto} (tier 3)"
    # Release tests with the disjointness checker forced on: debug test
    # builds dogfood it via cfg(debug_assertions), this stage proves the
    # release codepath + IPT_CHECK=1 combination (the one ops would flip
    # on a misbehaving host) is equally clean, at the CI matrix's thread
    # counts.
    IPT_CHECK=1 cargo test --release -p ipt-parallel -p ipt-pool
    IPT_CHECK=1 cargo test --release -p ipt --features fault-inject \
        --test fault_injection

    stage "cycle-scheduler smoke: tall-skinny bundles under faults (tier 3)"
    # --scaling appends the 65536x8 shape — one column group of the
    # default u64 width, so every row-permute task comes from the
    # cycle-bundle scheduler — and measures the 1-thread plain-R2C twin.
    # Under a 5% panic rate with the checker live, the containment
    # contract is the same as the fault stage's: structured abort or
    # clean pass, never a crash.
    cargo build --release -p ipt-cli --features fault-inject --quiet
    contained_bench --scaling
}

# Run one fault-injected parallel bench (extra `ipt-cli bench` flags pass
# through) and enforce the containment contract: the only acceptable
# outcomes are a structured abort (exit 4, "transpose aborted in phase
# ...") or — should the deterministic decisions miss every site — a clean
# pass. A segfault (139), a raw panic exit (101) or any other code means
# containment broke. Writes the report to a temp file so a clean run
# cannot clobber the committed BENCH_parallel.json baseline.
contained_bench() {
    local out rc=0
    out="$(IPT_FAULT=panic:0.05 IPT_CHECK=1 \
        target/release/ipt-cli bench --suite parallel --quick --samples 2 \
        --out "$(mktemp)" "$@" 2>&1)" || rc=$?
    case "$rc" in
        4)
            if ! grep -q "transpose aborted in phase" <<< "$out"; then
                echo "$out"
                echo "fault smoke: exit 4 without a TransposeAborted report"
                return 1
            fi
            echo "fault smoke: contained abort, as expected:"
            grep "transpose aborted" <<< "$out" | head -1
            ;;
        0)
            echo "fault smoke: WARNING: no injection fired on this" \
                 "shape set (deterministic decisions all missed)"
            ;;
        *)
            echo "$out"
            echo "fault smoke: unexpected exit code $rc (139 = SIGSEGV," \
                 "101 = uncontained panic)"
            return 1
            ;;
    esac
}

miri_stage() {
    stage "miri: ipt-core + ipt-pool under the interpreter (tier 3, soft)"
    # Miri interprets the unsafe core (raw-pointer kernels, the scoped
    # executor) and catches UB tests can't. It needs a nightly toolchain
    # with the miri component — not part of the pinned CI toolchain — so
    # skip cleanly when absent instead of failing a stable-only box.
    if ! rustup run nightly cargo miri --version > /dev/null 2>&1; then
        echo "nightly+miri not installed; skipping" \
             "(rustup toolchain install nightly --component miri)"
        return 0
    fi
    # Quadratic interpreter slowdown: keep it to the two leaf crates and
    # skip the soak-sized tests via the harness's own #[ignore] tags.
    MIRIFLAGS="-Zmiri-disable-isolation" \
        rustup run nightly cargo miri test -p ipt-core -p ipt-pool
}

fault_stage() {
    stage "fault smoke: injected panics must abort, not crash (tier 3)"
    # Build the CLI with the injection sites compiled in and run a bench
    # suite under a 5% per-item panic rate (contract in contained_bench).
    cargo build --release -p ipt-cli --features fault-inject --quiet
    contained_bench
}

recovery_stage() {
    stage "recovery: armed retries must self-heal injected faults (tier 3)"
    cargo build --release -p ipt-cli --features fault-inject --quiet

    # The recovery test suite end to end (also covers IPT_RETRY=0
    # containment): every injected panic/skew recovered byte-identically
    # at the armed budget, abort contract intact at budget 0.
    cargo test --release -p ipt --features fault-inject \
        --test fault_injection -- armed_retry budget_zero

    # Same fault dose as the fault stage — but with the ladder armed the
    # bench must *complete*: exit 0, every per-run verification pass, the
    # regression gate actually evaluated. Exit 4 here means the ladder
    # failed to heal a contained fault; anything else means containment
    # itself broke.
    local out rc=0
    out="$(IPT_FAULT=panic:0.05 IPT_CHECK=1 IPT_RETRY=2 \
        target/release/ipt-cli bench --suite parallel --quick --samples 2 \
        --out "$(mktemp)" 2>&1)" || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "$out"
        echo "recovery smoke: armed bench must exit 0, got $rc"
        return 1
    fi
    if grep -q "recovery:" <<< "$out"; then
        echo "recovery smoke: armed bench completed; healed runs:"
        grep "recovery:" <<< "$out" | head -3
    else
        echo "recovery smoke: WARNING: armed bench saw no injection" \
             "(deterministic decisions all missed)"
    fi

    stage "hang smoke: watchdog must exit 5, never wedge (tier 3)"
    # A 100% hang rate stalls the first parallel task forever; the
    # watchdog (500 ms deadline) must take the process down with exit
    # code 5 long before the outer 60 s timeout. 124 means the process
    # wedged — the exact failure mode the watchdog exists to prevent.
    rc=0
    timeout 60 env IPT_FAULT=hang:1 IPT_WATCHDOG_MS=500 \
        target/release/ipt-cli bench --suite parallel --quick --samples 2 \
        --out "$(mktemp)" > /dev/null 2>&1 || rc=$?
    case "$rc" in
        5) echo "hang smoke: watchdog fired and exited 5, as expected" ;;
        124)
            echo "hang smoke: process WEDGED for 60s — watchdog never fired"
            return 1
            ;;
        *)
            echo "hang smoke: expected exit 5 (or 124 = wedge), got $rc"
            return 1
            ;;
    esac
}

main_pipeline() {
    stage "fmt (tier 0)"
    cargo fmt --all -- --check

    stage "clippy (tier 0)"
    cargo clippy --workspace --all-targets -- -D warnings

    stage "shellcheck (tier 0)"
    if command -v shellcheck > /dev/null 2>&1; then
        shellcheck scripts/*.sh
    else
        echo "shellcheck not installed; skipping (install it to lint scripts/*.sh)"
    fi

    stage "hermetic verify (tier 1)"
    scripts/verify.sh

    stage "rustdoc -D warnings (tier 2)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

    stage "bench smoke: fixed suites vs committed baselines (tier 2)"
    # A --quick run keeps the full (algorithm, shape) entry set of each
    # committed BENCH_*.json (compare keys must match) and only cuts
    # samples, so every suite finishes in seconds. The kernels gate defends
    # the kernel family's headline property — the run-blocked kernels'
    # multiple-x win over scalar on large-gcd shapes; the aos/batched gates
    # defend the §6.1 skinny specialization and the shared-params batched
    # path. Losing any of those shows up as a 50%+ median drop; machine
    # noise on a busy single-core box measures up to ~30% run-to-run. Hence
    # a generous threshold plus one retry: noise must strike the same way
    # twice in a row to false-fail, while a real regression fails both runs.
    # Every smoke run is also archived into the history dir for the trend
    # stage below (and for CI artifact upload).
    THRESHOLD="${IPT_BENCH_THRESHOLD:-40}"
    CLI=target/release/ipt-cli
    SMOKE="$(mktemp)"
    CLEAN_HISTORY=0
    if [ -z "${IPT_BENCH_HISTORY_DIR:-}" ]; then
        IPT_BENCH_HISTORY_DIR="$(mktemp -d)"
        CLEAN_HISTORY=1
    fi
    cleanup() {
        rm -f "$SMOKE"
        if [ "$CLEAN_HISTORY" = 1 ]; then
            rm -rf "$IPT_BENCH_HISTORY_DIR"
        fi
    }
    trap cleanup EXIT

    stage "calibrate: per-host kernel crossovers (tier 2)"
    # Measure this box's scalar/block4/block8 crossovers and persist the
    # profile next to the bench archive (so a CI artifact upload of the
    # history dir carries it too). Exporting IPT_CALIBRATION makes every
    # bench run below resolve dispatch through the measured profile — the
    # smoke gates then double as an assertion that calibrated dispatch
    # keeps the committed baselines' headline wins.
    export IPT_CALIBRATION="$IPT_BENCH_HISTORY_DIR/ipt-calibration.json"
    "$CLI" calibrate --force

    run_smoke() {
        local suite="$1"
        "$CLI" bench --suite "$suite" --quick --samples 3 --out "$SMOKE" \
            --history "$IPT_BENCH_HISTORY_DIR" > /dev/null
        grep -q '"schema": "ipt-bench-report-v1"' "$SMOKE"
        # The calibrate stage exported IPT_CALIBRATION: every smoke report
        # must record that the profile (not the static fallback) decided.
        grep -q '"dispatch_tier": "calibrated"' "$SMOKE"
        "$CLI" bench --compare "$SMOKE" "$SMOKE" > /dev/null  # parse round-trip
        "$CLI" bench --compare "BENCH_${suite}.json" "$SMOKE" --threshold "$THRESHOLD"
    }
    for suite in kernels aos batched; do
        if ! run_smoke "$suite"; then
            echo "-- $suite smoke regressed once; retrying to rule out machine noise --"
            run_smoke "$suite"
        fi
    done

    stage "model smoke: phase attribution vs measured timers (tier 2)"
    # The analytical phase model (MODEL.md) against this box's measured
    # phase timers on the first committed bench shape. The gate is a loose
    # sanity bound, far above the ~0.1-0.19 divergence a healthy build
    # measures (see EXPERIMENTS.md): it catches the model and the engine
    # drifting apart structurally (wrong phase set, wrong ranking, a
    # broken bytes accounting), not machine noise. Same retry rationale as
    # the bench smoke above.
    MODEL_GATE=0.45
    if ! "$CLI" model --rows 192 --cols 256 --elem 8 --samples 48 \
        --max-divergence "$MODEL_GATE"; then
        echo "-- model smoke breached once; retrying to rule out machine noise --"
        "$CLI" model --rows 192 --cols 256 --elem 8 --samples 48 \
            --max-divergence "$MODEL_GATE"
    fi

    stage "bench trend: history gate (tier 2)"
    # A second kernels run, gated against the archive the smoke stage just
    # wrote with the trailing-median + monotone-drift gate — this exercises
    # the whole append -> load -> trend pipeline on files the pipeline
    # itself produced, and exits 3 if the box slowed down between the two
    # runs by more than the (generous) threshold.
    "$CLI" bench --suite kernels --quick --samples 3 --out "$SMOKE" > /dev/null
    "$CLI" bench --compare "$SMOKE" --history "$IPT_BENCH_HISTORY_DIR" \
        --threshold "$THRESHOLD"
}

case "${1:-all}" in
    all)
        main_pipeline
        sanitize_stage
        miri_stage
        # Last on purpose: these run binaries that abort (or, for the
        # hang smoke, get killed out of) transposes.
        fault_stage
        recovery_stage
        ;;
    sanitize) sanitize_stage ;;
    miri) miri_stage ;;
    fault) fault_stage ;;
    recovery) recovery_stage ;;
    *)
        echo "usage: scripts/ci.sh [all|sanitize|fault|recovery|miri]" >&2
        exit 2
        ;;
esac

echo
echo "== ci: OK =="
