#!/usr/bin/env bash
# Tiered CI pipeline: cheap universal gates first, the full hermetic
# verification in the middle, perf smoke last. Designed so a clean
# checkout with only the pinned toolchain (rustc + cargo + rustfmt +
# clippy) passes end-to-end:
#
#   tier 0  fmt          cargo fmt --check            (seconds)
#   tier 0  clippy       cargo clippy -D warnings     (one build)
#   tier 0  shellcheck   scripts/*.sh, if installed
#   tier 1  verify       scripts/verify.sh            (hermetic build+test)
#   tier 2  rustdoc      -D warnings across the workspace
#   tier 2  bench smoke  kernels suite: emit -> parse -> compare against
#                        the committed BENCH_kernels.json baseline
#
# Usage: scripts/ci.sh  (from anywhere; cd's to the repo root)
#
# Knobs:
#   IPT_BENCH_THRESHOLD  regression gate percent for the bench smoke
#                        (default 40 — see the note at that stage).

set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

stage() { echo; echo "== ci: $1 =="; }

stage "fmt (tier 0)"
cargo fmt --all -- --check

stage "clippy (tier 0)"
cargo clippy --workspace --all-targets -- -D warnings

stage "shellcheck (tier 0)"
if command -v shellcheck > /dev/null 2>&1; then
    shellcheck scripts/*.sh
else
    echo "shellcheck not installed; skipping (install it to lint scripts/*.sh)"
fi

stage "hermetic verify (tier 1)"
scripts/verify.sh

stage "rustdoc -D warnings (tier 2)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

stage "bench smoke: kernels suite vs committed baseline (tier 2)"
# A --quick run keeps the full (algorithm, shape) entry set of the
# committed BENCH_kernels.json (compare keys must match) and only cuts
# samples, so it finishes in seconds. The gate defends the kernel
# family's headline property — the run-blocked kernels' multiple-x win
# over scalar on large-gcd shapes. Losing that property (broken
# dispatch, de-vectorized inner loop, memcpy fast path gone) shows up as
# a 50%+ median drop; machine noise on a busy single-core box measures
# up to ~30% run-to-run. Hence a generous threshold plus one retry:
# noise must strike the same way twice in a row to false-fail, while a
# real regression fails both runs.
THRESHOLD="${IPT_BENCH_THRESHOLD:-40}"
CLI=target/release/ipt-cli
SMOKE="$(mktemp)"
trap 'rm -f "$SMOKE"' EXIT
run_smoke() {
    "$CLI" bench --suite kernels --quick --samples 3 --out "$SMOKE" > /dev/null
    grep -q '"schema": "ipt-bench-report-v1"' "$SMOKE"
    "$CLI" bench --compare "$SMOKE" "$SMOKE" > /dev/null  # parse round-trip
    "$CLI" bench --compare BENCH_kernels.json "$SMOKE" --threshold "$THRESHOLD"
}
if ! run_smoke; then
    echo "-- bench smoke regressed once; retrying to rule out machine noise --"
    run_smoke
fi

echo
echo "== ci: OK =="
