#!/usr/bin/env python3
"""Plot the CSVs emitted by the ipt-bench figure harnesses.

Usage:
    python3 scripts/plot_results.py [results_dir] [out_dir]

Reads results/fig*.csv (as produced by the `--csv` flags documented in
EXPERIMENTS.md) and writes one PNG per figure, visually mirroring the
paper's presentation: histograms for Figures 3/6/7, heatmaps for
Figures 4/5, line charts for Figures 8/9. Requires matplotlib; every
figure whose CSV is missing is skipped with a note, so partial result
sets plot fine.
"""

import csv
import os
import sys
from collections import defaultdict


def read_csv(path):
    with open(path) as f:
        return list(csv.DictReader(f))


def save(fig, out_dir, name):
    path = os.path.join(out_dir, name)
    fig.savefig(path, dpi=130, bbox_inches="tight")
    print(f"wrote {path}")


def plot_histograms(plt, rows, key, value, title, out_dir, name):
    groups = defaultdict(list)
    for r in rows:
        groups[r[key]].append(float(r[value]))
    fig, axes = plt.subplots(len(groups), 1, figsize=(7, 2.2 * len(groups)), sharex=True)
    if len(groups) == 1:
        axes = [axes]
    for ax, (label, xs) in zip(axes, groups.items()):
        ax.hist(xs, bins=30)
        med = sorted(xs)[len(xs) // 2]
        ax.axvline(med, linestyle="--", color="k")
        ax.set_ylabel("samples")
        ax.set_title(f"{label} (median {med:.2f} GB/s)", fontsize=9)
    axes[-1].set_xlabel("GB/s")
    fig.suptitle(title)
    save(fig, out_dir, name)


def plot_heatmaps(plt, rows, title, out_dir, name):
    for alg in sorted({r["alg"] for r in rows}):
        pts = [(int(r["m"]), int(r["n"]), float(r["gbps"])) for r in rows if r["alg"] == alg]
        ms = sorted({p[0] for p in pts})
        ns = sorted({p[1] for p in pts})
        grid = [[0.0] * len(ns) for _ in ms]
        for m, n, v in pts:
            grid[ms.index(m)][ns.index(n)] = v
        fig, ax = plt.subplots(figsize=(6, 5))
        im = ax.imshow(grid, origin="upper", aspect="auto",
                       extent=[ns[0], ns[-1], ms[-1], ms[0]])
        fig.colorbar(im, label="GB/s")
        ax.set_xlabel("columns n")
        ax.set_ylabel("rows m")
        ax.set_title(f"{title} — {alg.upper()}")
        save(fig, out_dir, f"{name}_{alg}.png")


def plot_lines(plt, rows, title, out_dir, name):
    for panel in sorted({r["panel"] for r in rows}):
        fig, ax = plt.subplots(figsize=(6, 4))
        for strat in ["C2R", "Vector", "Direct"]:
            pts = sorted(
                (int(r["struct_bytes"]), float(r["gbps"]))
                for r in rows
                if r["panel"] == panel and r["strategy"] == strat
            )
            if pts:
                ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o", label=strat)
        ax.set_xlabel("structure size (bytes)")
        ax.set_ylabel("GB/s")
        ax.set_ylim(bottom=0)
        ax.legend()
        ax.set_title(f"{title} — {panel}")
        save(fig, out_dir, f"{name}_{panel}.png")


def main():
    results = sys.argv[1] if len(sys.argv) > 1 else "results"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else results
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    os.makedirs(out_dir, exist_ok=True)
    jobs = [
        ("fig3.csv", lambda r: plot_histograms(
            plt, r, "algo", "gbps", "Figure 3: CPU in-place transposition", out_dir, "fig3.png")),
        ("fig4_5.csv", lambda r: plot_heatmaps(
            plt, r, "Figures 4/5: performance landscape (measured)", out_dir, "fig4_5")),
        ("fig4_5_model.csv", lambda r: plot_heatmaps(
            plt, r, "Figures 4/5: performance landscape (K20c model)", out_dir, "fig4_5_model")),
        ("fig6.csv", lambda r: plot_histograms(
            plt, r, "algo", "gbps", "Figure 6: Sung vs C2R", out_dir, "fig6.png")),
        ("fig7.csv", lambda r: plot_histograms(
            plt, r, "kind", "gbps", "Figure 7: AoS -> SoA conversion", out_dir, "fig7.png")),
        ("fig8.csv", lambda r: plot_lines(
            plt, r, "Figure 8: unit-stride AoS access", out_dir, "fig8")),
        ("fig9.csv", lambda r: plot_lines(
            plt, r, "Figure 9: random AoS access", out_dir, "fig9")),
    ]
    for fname, job in jobs:
        path = os.path.join(results, fname)
        if os.path.exists(path):
            job(read_csv(path))
        else:
            print(f"skipping {fname} (not found in {results}/)")


if __name__ == "__main__":
    main()
